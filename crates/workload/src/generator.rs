//! The per-instance reference-stream generator.

use crate::profile::WorkloadProfile;
use crate::reference::MemRef;
use crate::zipf::ZipfSampler;
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{BlockAddr, SimError, SimRng, SnapshotErrorKind, ThreadId, VmId};
use std::collections::VecDeque;

/// Per-thread generator state.
#[derive(Debug, Clone)]
struct ThreadState {
    rng: SimRng,
    recent: VecDeque<u64>,
    refs: u64,
    segment: Option<SegmentCursor>,
    /// A batched fill ([`WorkloadGenerator::fill_batch`]) already consumed
    /// the take-a-handoff-access draw for this thread's next reference and
    /// it came up *yes*: the next [`WorkloadGenerator::next_ref`] call must
    /// go straight to the handoff pool without re-drawing, so the thread's
    /// RNG stream is identical to the unbatched one.
    pending_handoff: bool,
}

/// Progress through an owned work segment.
#[derive(Debug, Clone, Copy)]
struct SegmentCursor {
    segment: usize,
    pos: u64,
    touch: u32,
}

/// One migrating work segment: a window of blocks moving through the
/// pipeline of threads.
#[derive(Debug, Clone, Copy)]
struct Segment {
    /// Block offset of the segment's current incarnation within the
    /// handoff region.
    base: u64,
    /// How many threads have processed this incarnation so far.
    passes: usize,
    /// The thread that last processed it.
    last_owner: Option<usize>,
}

/// The pool of migrating work segments (see
/// [`WorkloadProfile::handoff_access_prob`]).
///
/// Segments follow a *pipeline* discipline modeling task-queue and
/// buffer-pool handoff: a fresh segment (new blocks, cold everywhere) is
/// first processed by one thread, then passed in turn to every other
/// thread — each successor's misses land in the previous owner's still-warm
/// caches (cache-to-cache transfers, dirty when the previous owner wrote).
/// After all threads have processed an incarnation, the segment is
/// *reincarnated* onto the next window of the handoff region, streaming
/// through it so old copies die by eviction.
#[derive(Debug, Clone, Default)]
struct HandoffPool {
    segments: Vec<Segment>,
    /// Stack of free segment ids; top = most recently released.
    free: Vec<usize>,
    /// Next streaming offset for reincarnations (block units).
    next_window: u64,
    /// Handoff region span in blocks.
    span: u64,
    seg_blocks: u64,
    threads: usize,
}

impl HandoffPool {
    fn new(num_segments: usize, seg_blocks: u64, threads: usize) -> Self {
        let span = num_segments as u64 * seg_blocks;
        Self {
            segments: (0..num_segments)
                .map(|i| Segment {
                    base: i as u64 * seg_blocks,
                    passes: 0,
                    last_owner: None,
                })
                .collect(),
            free: (0..num_segments).rev().collect(),
            next_window: 0,
            span,
            seg_blocks,
            threads,
        }
    }

    /// Takes a segment for `me`: preferably the most recently released
    /// mid-pipeline segment last processed by *another* thread (warm), else
    /// a fresh incarnation, else whatever is on top.
    fn acquire(&mut self, me: usize) -> Option<usize> {
        if self.free.is_empty() {
            return None;
        }
        let pick = self
            .free
            .iter()
            .rposition(|&id| {
                let s = &self.segments[id];
                s.passes > 0 && s.last_owner != Some(me)
            })
            .or_else(|| {
                self.free
                    .iter()
                    .rposition(|&id| self.segments[id].passes == 0)
            })
            .unwrap_or(self.free.len() - 1);
        Some(self.free.remove(pick))
    }

    /// Returns a processed segment; completed incarnations stream onto the
    /// next window of the region.
    fn release(&mut self, id: usize, owner: usize) {
        let threads = self.threads;
        let seg = &mut self.segments[id];
        seg.passes += 1;
        seg.last_owner = Some(owner);
        if seg.passes >= threads {
            seg.base = self.next_window;
            seg.passes = 0;
            seg.last_owner = None;
            self.next_window = (self.next_window + self.seg_blocks) % self.span.max(1);
        }
        self.free.push(id);
    }

    /// Block offset (within the handoff region) of position `pos` in
    /// segment `id`.
    fn block_of(&self, id: usize, pos: u64) -> u64 {
        self.segments[id].base + pos
    }
}

/// Generates the memory-reference stream of one workload instance (one VM).
///
/// Address-space layout inside the VM (block indices):
///
/// ```text
/// [0 .. shared)                      shared region, all threads
///   [shared - H .. shared)             handoff (migratory) segments
/// [shared + t*P .. shared + (t+1)*P) private region of thread t
/// ```
///
/// Four locality mechanisms shape each thread's stream: migratory handoff
/// segments (producer-consumer sharing), Zipf-hot shared reuse, Zipf-hot
/// private reuse, and a short recent-blocks window.
///
/// # Examples
///
/// ```
/// use consim_workload::{WorkloadGenerator, WorkloadKind};
/// use consim_types::{SimRng, ThreadId, VmId};
///
/// let profile = WorkloadKind::SpecJbb.profile();
/// let rng = SimRng::from_seed(42);
/// let mut g = WorkloadGenerator::new(VmId::new(2), &profile, &rng);
/// let r = g.next_ref(ThreadId::new(1));
/// assert_eq!(r.thread, ThreadId::new(1));
/// assert_eq!(g.refs_emitted(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    vm: VmId,
    profile: WorkloadProfile,
    /// Effective samplers for the current load phase: restricted to the
    /// hottest `footprint_permille` fraction of each region's *unchanged*
    /// block layout (Zipf rank 0 is the hottest block, so a narrower
    /// sampler touches a prefix of the same addresses).
    shared_sampler: Option<ZipfSampler>,
    private_sampler: ZipfSampler,
    /// Phase-scaled access probabilities (base × `sharing_permille`/1000).
    eff_shared_access_prob: f64,
    eff_handoff_access_prob: f64,
    /// Current index into the profile's phase schedule (0 when empty).
    phase: usize,
    /// `refs_emitted` value at which the next phase begins; `u64::MAX`
    /// when the schedule is empty, so the steady-load hot path costs one
    /// never-taken branch. Derived state: recomputed on restore.
    next_phase_at: u64,
    threads: Vec<ThreadState>,
    handoff: HandoffPool,
    /// First block index of the handoff region (within the shared region).
    handoff_base: u64,
    refs_emitted: u64,
}

/// The phase index in force after `refs` total references, and the
/// absolute reference count at which the next phase starts. The schedule
/// cycles; an empty schedule pins `(0, u64::MAX)`.
fn phase_at(profile: &WorkloadProfile, refs: u64) -> (usize, u64) {
    if profile.phases.is_empty() {
        return (0, u64::MAX);
    }
    let total: u64 = profile
        .phases
        .iter()
        .fold(0u64, |acc, p| acc.saturating_add(p.refs));
    let offset = refs % total;
    let cycle_start = refs - offset;
    let mut acc = 0u64;
    for (i, p) in profile.phases.iter().enumerate() {
        acc = acc.saturating_add(p.refs);
        if offset < acc {
            return (i, cycle_start.saturating_add(acc));
        }
    }
    unreachable!("offset < total by construction")
}

impl WorkloadGenerator {
    /// Creates a generator for VM `vm` running `profile`.
    ///
    /// Each thread derives an independent RNG stream from `rng`, labeled by
    /// VM and thread index, so streams are stable regardless of issue order
    /// (except for handoff accesses, which intentionally depend on the
    /// inter-thread segment migration order).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(vm: VmId, profile: &WorkloadProfile, rng: &SimRng) -> Self {
        profile.validate().expect("workload profile must be valid");
        let shared_blocks = profile.shared_blocks();
        let shared_sampler = if shared_blocks > 0 {
            Some(ZipfSampler::new(shared_blocks, profile.shared_zipf).expect("validated"))
        } else {
            None
        };
        let private_sampler = ZipfSampler::new(
            profile.private_blocks_per_thread().max(1),
            profile.private_zipf,
        )
        .expect("validated");
        // One labeled derivation for the workload, then alloc-free indexed
        // streams per (vm, thread) pair.
        let stream_base = rng.derive(&profile.name);
        let threads = (0..profile.threads)
            .map(|t| ThreadState {
                rng: stream_base.derive_parts("workload/vm/thread", &[vm.index() as u64, t as u64]),
                recent: VecDeque::with_capacity(profile.recent_window + 1),
                refs: 0,
                segment: None,
                pending_handoff: false,
            })
            .collect();
        let handoff_span = profile.handoff_segments as u64 * profile.handoff_segment_blocks;
        let mut gen = Self {
            vm,
            profile: profile.clone(),
            shared_sampler,
            private_sampler,
            eff_shared_access_prob: profile.shared_access_prob,
            eff_handoff_access_prob: profile.handoff_access_prob,
            phase: 0,
            next_phase_at: u64::MAX,
            threads,
            handoff: HandoffPool::new(
                profile.handoff_segments,
                profile.handoff_segment_blocks,
                profile.threads,
            ),
            handoff_base: shared_blocks.saturating_sub(handoff_span),
            refs_emitted: 0,
        };
        gen.sync_phase();
        gen
    }

    /// Recomputes the phase index and effective parameters from
    /// `refs_emitted`. Called at construction, after a restore, after a
    /// respawn, and (via [`WorkloadGenerator::finish_ref`]) when the
    /// reference count crosses a phase boundary.
    fn sync_phase(&mut self) {
        let (phase, next_at) = phase_at(&self.profile, self.refs_emitted);
        self.phase = phase;
        self.next_phase_at = next_at;
        let p = &self.profile;
        let (fp, sharing) = match p.phases.get(phase) {
            Some(ph) => (
                u64::from(ph.footprint_permille),
                f64::from(ph.sharing_permille) / 1000.0,
            ),
            None => (1000, 1.0),
        };
        let shared_blocks = p.shared_blocks();
        self.shared_sampler = if shared_blocks > 0 {
            let active = (shared_blocks * fp / 1000).max(1);
            Some(ZipfSampler::new(active, p.shared_zipf).expect("validated"))
        } else {
            None
        };
        let private_active = (p.private_blocks_per_thread().max(1) * fp / 1000).max(1);
        self.private_sampler = ZipfSampler::new(private_active, p.private_zipf).expect("validated");
        self.eff_shared_access_prob = p.shared_access_prob * sharing;
        self.eff_handoff_access_prob = p.handoff_access_prob * sharing;
    }

    /// Resets the generator to a *fresh instance* of the same workload for
    /// a re-arrival: all mutable state (thread RNG streams, recent windows,
    /// segment ownership, handoff pool, reference counts) restarts from
    /// zero, with per-thread streams derived from `rng` through a
    /// `workload/respawn` label keyed by the VM and the arrival ordinal —
    /// so the k-th incarnation's stream is deterministic but fresh.
    ///
    /// `rng` must be the same root RNG the generator was constructed with.
    pub fn respawn(&mut self, rng: &SimRng, arrival: u64) {
        let stream_base = rng
            .derive(&self.profile.name)
            .derive_parts("workload/respawn", &[self.vm.index() as u64, arrival]);
        for (t, state) in self.threads.iter_mut().enumerate() {
            state.rng =
                stream_base.derive_parts("workload/vm/thread", &[self.vm.index() as u64, t as u64]);
            state.recent.clear();
            state.refs = 0;
            state.segment = None;
            state.pending_handoff = false;
        }
        self.handoff = HandoffPool::new(
            self.profile.handoff_segments,
            self.profile.handoff_segment_blocks,
            self.profile.threads,
        );
        self.refs_emitted = 0;
        self.sync_phase();
    }

    /// The VM this generator feeds.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The profile in use.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Total references emitted across all threads.
    pub fn refs_emitted(&self) -> u64 {
        self.refs_emitted
    }

    /// References emitted by one thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is outside the profile's thread count.
    pub fn thread_refs(&self, thread: ThreadId) -> u64 {
        self.threads[thread.index()].refs
    }

    /// Whole transactions completed so far (references divided by the
    /// profile's transaction size).
    pub fn transactions_completed(&self) -> u64 {
        self.refs_emitted / self.profile.refs_per_transaction
    }

    /// The hottest `n` block indices of the VM's address space, most-shared
    /// first: handoff region, then the shared Zipf head, then each thread's
    /// private head, interleaved. Used to pre-warm caches (the paper loads
    /// *warmed* workload checkpoints).
    pub fn warm_set(&self, n: usize) -> Vec<BlockAddr> {
        let shared = self.profile.shared_blocks();
        let per_thread = self.profile.private_blocks_per_thread();
        let mut blocks = Vec::with_capacity(n);
        // Handoff region first: always the most actively communicated.
        let span = self.profile.handoff_segments as u64 * self.profile.handoff_segment_blocks;
        for i in 0..span.min(n as u64) {
            blocks.push(self.handoff_base + i);
        }
        // Then alternate shared head and private heads by hotness rank.
        let mut rank = 0u64;
        while blocks.len() < n && rank < shared.max(per_thread) {
            if rank < shared {
                blocks.push(rank);
            }
            for t in 0..self.profile.threads as u64 {
                if blocks.len() >= n {
                    break;
                }
                if rank < per_thread {
                    blocks.push(shared + t * per_thread + rank);
                }
            }
            rank += 1;
        }
        blocks.truncate(n);
        blocks
            .into_iter()
            .map(|b| BlockAddr::in_vm(self.vm, b))
            .collect()
    }

    /// Emits the next reference for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is outside the profile's thread count.
    pub fn next_ref(&mut self, thread: ThreadId) -> MemRef {
        let t = thread.index();
        // Migratory handoff sharing takes priority with its own probability;
        // the owned segment advances only on handoff accesses, so the
        // per-reference handoff share equals the profile's knob. A batched
        // fill may have drawn (and committed to) the handoff decision
        // already — see [`WorkloadGenerator::fill_batch`].
        let take_handoff = if self.threads[t].pending_handoff {
            self.threads[t].pending_handoff = false;
            true
        } else {
            self.eff_handoff_access_prob > 0.0
                && self.threads[t].rng.chance(self.eff_handoff_access_prob)
        };
        if take_handoff {
            if let Some(r) = self.handoff_access(thread) {
                return r;
            }
        }
        self.thread_local_ref(thread)
    }

    /// Pre-generates up to `max` references for `thread` into `out`,
    /// stopping early at the first reference that needs the shared
    /// [`HandoffPool`]. Handoff accesses depend on the *global* inter-thread
    /// segment migration order, so they must be generated at their exact
    /// issue event ([`WorkloadGenerator::next_ref`]); everything else is a
    /// pure function of per-thread state and can be produced in bulk. The
    /// concatenation of batched fills and boundary `next_ref` calls yields
    /// the per-thread stream of the purely unbatched formulation, draw for
    /// draw.
    ///
    /// Returns without appending anything when a handoff access is due
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is outside the profile's thread count.
    pub fn fill_batch(&mut self, thread: ThreadId, out: &mut Vec<MemRef>, max: usize) {
        let t = thread.index();
        for _ in 0..max {
            if self.threads[t].pending_handoff {
                break;
            }
            // Re-read per iteration: a phase boundary crossed mid-batch
            // rescales the handoff probability for the remaining draws.
            let handoff_prob = self.eff_handoff_access_prob;
            if handoff_prob > 0.0 && self.threads[t].rng.chance(handoff_prob) {
                // The draw is spent; next_ref must honor it, not repeat it.
                self.threads[t].pending_handoff = true;
                break;
            }
            let r = self.thread_local_ref(thread);
            out.push(r);
        }
    }

    /// One non-handoff reference: recent-window reuse, shared Zipf, or
    /// private Zipf — all driven by the thread's own RNG stream alone.
    fn thread_local_ref(&mut self, thread: ThreadId) -> MemRef {
        let t = thread.index();
        let shared_count = self.profile.shared_blocks();
        let state = &mut self.threads[t];
        let block_index = if state.recent.len() > 1
            && state.rng.chance(self.profile.recent_reuse_prob)
        {
            let i = state.rng.index(state.recent.len());
            state.recent[i]
        } else if self.shared_sampler.is_some() && state.rng.chance(self.eff_shared_access_prob) {
            self.shared_sampler
                .as_ref()
                .expect("checked above")
                .sample(&mut state.rng)
        } else {
            let rank = self.private_sampler.sample(&mut state.rng);
            shared_count + t as u64 * self.profile.private_blocks_per_thread() + rank
        };

        let is_shared_region = block_index < shared_count;
        let write_prob = if is_shared_region {
            self.profile.shared_write_prob
        } else {
            self.profile.private_write_prob
        };
        let is_write = state.rng.chance(write_prob);
        state.recent.push_back(block_index);
        if state.recent.len() > self.profile.recent_window {
            state.recent.pop_front();
        }
        self.finish_ref(thread, block_index, is_write, is_shared_region)
    }

    /// One access to the thread's current (or a newly acquired) work
    /// segment. Returns `None` if every segment is owned elsewhere.
    fn handoff_access(&mut self, thread: ThreadId) -> Option<MemRef> {
        let t = thread.index();
        let p = &self.profile;
        let seg_blocks = p.handoff_segment_blocks;
        let touches = p.handoff_touches;
        if self.threads[t].segment.is_none() {
            let segment = self.handoff.acquire(t)?;
            self.threads[t].segment = Some(SegmentCursor {
                segment,
                pos: 0,
                touch: 0,
            });
        }
        let cursor = self.threads[t].segment.expect("set above");
        let block_index = self.handoff_base + self.handoff.block_of(cursor.segment, cursor.pos);
        // The owner decides on first touch whether it dirties the block.
        let is_write = cursor.touch == 0 && self.threads[t].rng.chance(p.handoff_write_prob);
        // Advance the cursor; release the segment after the last touch of
        // the last block.
        let mut next = cursor;
        next.touch += 1;
        if next.touch >= touches {
            next.touch = 0;
            next.pos += 1;
        }
        if next.pos >= seg_blocks {
            self.handoff.release(cursor.segment, t);
            self.threads[t].segment = None;
        } else {
            self.threads[t].segment = Some(next);
        }
        Some(self.finish_ref(thread, block_index, is_write, true))
    }

    fn finish_ref(
        &mut self,
        thread: ThreadId,
        block_index: u64,
        is_write: bool,
        is_shared_region: bool,
    ) -> MemRef {
        self.threads[thread.index()].refs += 1;
        self.refs_emitted += 1;
        if self.refs_emitted >= self.next_phase_at {
            self.sync_phase();
        }
        MemRef {
            thread,
            address: BlockAddr::in_vm(self.vm, block_index).base_address(),
            is_write,
            is_shared_region,
        }
    }
}

impl Snapshot for WorkloadGenerator {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.refs_emitted);
        w.put_usize(self.threads.len());
        for state in &self.threads {
            state.rng.save(w);
            let recent: Vec<u64> = state.recent.iter().copied().collect();
            w.put_u64_slice(&recent);
            w.put_u64(state.refs);
            w.put_bool(state.pending_handoff);
            match state.segment {
                Some(cursor) => {
                    w.put_bool(true);
                    w.put_usize(cursor.segment);
                    w.put_u64(cursor.pos);
                    w.put_u32(cursor.touch);
                }
                None => w.put_bool(false),
            }
        }
        w.put_usize(self.handoff.segments.len());
        for seg in &self.handoff.segments {
            w.put_u64(seg.base);
            w.put_usize(seg.passes);
            w.put_opt_u64(seg.last_owner.map(|t| t as u64));
        }
        let free: Vec<u64> = self.handoff.free.iter().map(|&id| id as u64).collect();
        w.put_u64_slice(&free);
        w.put_u64(self.handoff.next_window);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.refs_emitted = r.get_u64()?;
        r.expect_len(self.threads.len(), "workload threads")?;
        let num_segments = self.handoff.segments.len();
        for state in self.threads.iter_mut() {
            state.rng.restore(r)?;
            state.recent = r.get_u64_vec()?.into();
            state.refs = r.get_u64()?;
            state.pending_handoff = r.get_bool()?;
            state.segment = if r.get_bool()? {
                let segment = r.get_usize()?;
                if segment >= num_segments {
                    return Err(SimError::snapshot(
                        SnapshotErrorKind::Corrupt,
                        format!("thread owns segment {segment} of {num_segments}"),
                    ));
                }
                Some(SegmentCursor {
                    segment,
                    pos: r.get_u64()?,
                    touch: r.get_u32()?,
                })
            } else {
                None
            };
        }
        r.expect_len(num_segments, "handoff segments")?;
        for seg in self.handoff.segments.iter_mut() {
            seg.base = r.get_u64()?;
            seg.passes = r.get_usize()?;
            seg.last_owner = r.get_opt_u64()?.map(|t| t as usize);
        }
        let free = r.get_u64_vec()?;
        if free.iter().any(|&id| id as usize >= num_segments) {
            return Err(SimError::snapshot(
                SnapshotErrorKind::Corrupt,
                "free list references an out-of-range segment",
            ));
        }
        self.handoff.free = free.into_iter().map(|id| id as usize).collect();
        self.handoff.next_window = r.get_u64()?;
        // Phase state is derived from the restored reference count.
        self.sync_phase();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{WorkloadKind, WorkloadProfileBuilder};
    use std::collections::HashSet;

    fn gen_for(kind: WorkloadKind, seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(VmId::new(0), &kind.profile(), &SimRng::from_seed(seed))
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = gen_for(WorkloadKind::TpcH, 1);
        let mut b = gen_for(WorkloadKind::TpcH, 1);
        for i in 0..1000 {
            let t = ThreadId::new(i % 4);
            assert_eq!(a.next_ref(t), b.next_ref(t));
        }
        let mut c = gen_for(WorkloadKind::TpcH, 2);
        let differs = (0..1000).any(|i| {
            let t = ThreadId::new(i % 4);
            a.next_ref(t) != c.next_ref(t)
        });
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn thread_streams_independent_of_interleaving_without_handoff() {
        let profile = WorkloadProfileBuilder::new("indep")
            .footprint_blocks(50_000)
            .build()
            .unwrap();
        let mk = || WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(9));
        let mut solo = mk();
        let solo_refs: Vec<_> = (0..100).map(|_| solo.next_ref(ThreadId::new(0))).collect();

        let mut mixed = mk();
        let mut mixed_refs = Vec::new();
        for i in 0..200 {
            let r = mixed.next_ref(ThreadId::new(i % 2));
            if i % 2 == 0 {
                mixed_refs.push(r);
            }
        }
        assert_eq!(solo_refs, mixed_refs);
    }

    #[test]
    fn addresses_stay_inside_vm_and_footprint() {
        let profile = WorkloadKind::TpcW.profile();
        let mut g = WorkloadGenerator::new(VmId::new(3), &profile, &SimRng::from_seed(4));
        for i in 0..20_000 {
            let r = g.next_ref(ThreadId::new(i % 4));
            assert_eq!(r.address.vm(), VmId::new(3));
            assert!(r.address.block().vm_block_index() < profile.footprint_blocks);
        }
    }

    #[test]
    fn shared_flag_matches_region() {
        let profile = WorkloadKind::TpcH.profile();
        let shared = profile.shared_blocks();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(5));
        for i in 0..5_000 {
            let r = g.next_ref(ThreadId::new(i % 4));
            assert_eq!(
                r.is_shared_region,
                r.address.block().vm_block_index() < shared
            );
        }
    }

    #[test]
    fn private_regions_are_disjoint_per_thread() {
        let profile = WorkloadProfileBuilder::new("t")
            .footprint_blocks(10_000)
            .shared_access_prob(0.0)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(6));
        let mut per_thread: Vec<HashSet<u64>> = vec![HashSet::new(); 4];
        for i in 0..8_000 {
            let t = i % 4;
            let r = g.next_ref(ThreadId::new(t));
            per_thread[t].insert(r.address.block().vm_block_index());
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert!(
                    per_thread[a].is_disjoint(&per_thread[b]),
                    "threads {a} and {b} overlap"
                );
            }
        }
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let profile = WorkloadProfileBuilder::new("w")
            .footprint_blocks(10_000)
            .shared_access_prob(0.0)
            .recent_reuse_prob(0.0)
            .private_write_prob(0.25)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(7));
        let n = 40_000;
        let writes = (0..n)
            .filter(|i| g.next_ref(ThreadId::new(i % 4)).is_write)
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn shared_access_fraction_tracks_profile() {
        let profile = WorkloadProfileBuilder::new("s")
            .footprint_blocks(10_000)
            .shared_fraction(0.5)
            .shared_access_prob(0.6)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(8));
        let n = 40_000;
        let shared = (0..n)
            .filter(|i| g.next_ref(ThreadId::new(i % 4)).is_shared_region)
            .count();
        let frac = shared as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "shared fraction {frac}");
    }

    #[test]
    fn recent_reuse_raises_short_range_hits() {
        let base = WorkloadProfileBuilder::new("r0")
            .footprint_blocks(100_000)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let reuse = WorkloadProfileBuilder::new("r1")
            .footprint_blocks(100_000)
            .recent_reuse_prob(0.6)
            .build()
            .unwrap();
        let unique_fraction = |profile| {
            let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(9));
            let mut seen = HashSet::new();
            let n = 20_000;
            for _ in 0..n {
                seen.insert(g.next_ref(ThreadId::new(0)).address.block());
            }
            seen.len() as f64 / n as f64
        };
        assert!(unique_fraction(reuse) < unique_fraction(base) * 0.7);
    }

    #[test]
    fn transaction_accounting() {
        let mut g = gen_for(WorkloadKind::SpecJbb, 10); // 16 refs/txn
        for i in 0..64 {
            g.next_ref(ThreadId::new(i % 4));
        }
        assert_eq!(g.refs_emitted(), 64);
        assert_eq!(g.transactions_completed(), 4);
        assert_eq!(g.thread_refs(ThreadId::new(0)), 16);
    }

    #[test]
    fn footprint_coverage_grows_toward_working_set() {
        let profile = WorkloadProfileBuilder::new("cov")
            .footprint_blocks(2_000)
            .shared_zipf(0.1)
            .private_zipf(0.1)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(11));
        let mut seen = HashSet::new();
        for i in 0..60_000 {
            seen.insert(g.next_ref(ThreadId::new(i % 4)).address.block());
        }
        assert!(
            seen.len() as u64 > profile.footprint_blocks * 9 / 10,
            "only covered {} of {}",
            seen.len(),
            profile.footprint_blocks
        );
    }

    #[test]
    fn handoff_fraction_tracks_knob() {
        let profile = WorkloadProfileBuilder::new("h")
            .footprint_blocks(50_000)
            .handoff_access_prob(0.3)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let base = profile.shared_blocks()
            - profile.handoff_segments as u64 * profile.handoff_segment_blocks;
        let span = profile.handoff_segments as u64 * profile.handoff_segment_blocks;
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(12));
        let n = 40_000;
        let mut in_handoff = 0;
        for i in 0..n {
            let r = g.next_ref(ThreadId::new(i % 4));
            let idx = r.address.block().vm_block_index();
            if (base..base + span).contains(&idx) {
                in_handoff += 1;
            }
        }
        let frac = in_handoff as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "handoff fraction {frac}");
    }

    #[test]
    fn segments_migrate_between_threads() {
        let profile = WorkloadProfileBuilder::new("m")
            .footprint_blocks(50_000)
            .handoff_access_prob(0.5)
            .handoff_segments(4)
            .handoff_segment_blocks(8)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(13));
        let base = profile.shared_blocks() - 4 * 8;
        // Track which threads touched each handoff block.
        let mut owners: std::collections::HashMap<u64, HashSet<usize>> =
            std::collections::HashMap::new();
        for i in 0..20_000 {
            let t = i % 4;
            let r = g.next_ref(ThreadId::new(t));
            let idx = r.address.block().vm_block_index();
            if idx >= base && idx < profile.shared_blocks() {
                owners.entry(idx).or_default().insert(t);
            }
        }
        let migrated = owners.values().filter(|s| s.len() >= 2).count();
        assert!(
            migrated > owners.len() / 2,
            "blocks must migrate between threads: {migrated}/{}",
            owners.len()
        );
    }

    #[test]
    fn handoff_writes_track_write_prob() {
        let profile = WorkloadProfileBuilder::new("hw")
            .footprint_blocks(50_000)
            .shared_access_prob(0.0)
            .private_write_prob(0.0)
            .recent_reuse_prob(0.0)
            .handoff_access_prob(1.0)
            .handoff_write_prob(0.5)
            .handoff_touches(1)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(14));
        let n = 20_000;
        let writes = (0..n)
            .filter(|i| g.next_ref(ThreadId::new(i % 4)).is_write)
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "handoff write fraction {frac}");
    }

    #[test]
    fn warm_set_is_unique_and_sized() {
        let g = gen_for(WorkloadKind::TpcH, 15);
        let warm = g.warm_set(5_000);
        assert_eq!(warm.len(), 5_000);
        let unique: HashSet<_> = warm.iter().collect();
        assert_eq!(unique.len(), warm.len(), "warm set has duplicates");
        for b in &warm {
            assert_eq!(b.vm(), VmId::new(0));
        }
    }

    #[test]
    fn snapshot_round_trip_continues_stream_exactly() {
        for kind in [
            WorkloadKind::TpcW,
            WorkloadKind::SpecJbb,
            WorkloadKind::TpcH,
        ] {
            let mut g = gen_for(kind, 21);
            for i in 0..5_000 {
                g.next_ref(ThreadId::new(i % 4));
            }
            let mut buf = SectionBuf::new();
            g.save(&mut buf);
            let mut back = gen_for(kind, 21);
            back.restore(&mut SectionReader::new("wl", buf.as_bytes()))
                .unwrap();
            assert_eq!(back.refs_emitted(), g.refs_emitted());
            for i in 0..5_000 {
                let t = ThreadId::new(i % 4);
                assert_eq!(back.next_ref(t), g.next_ref(t), "{kind:?} ref {i}");
            }
        }
    }

    /// Interleaving batched fills with boundary `next_ref` calls across
    /// threads reproduces the purely unbatched per-thread streams exactly —
    /// including every handoff access, whose global migration order the
    /// batching must not disturb when threads advance in the same order.
    #[test]
    fn batched_fills_match_unbatched_streams() {
        for kind in [
            WorkloadKind::TpcW,
            WorkloadKind::SpecJbb,
            WorkloadKind::TpcH,
        ] {
            let mut plain = gen_for(kind, 33);
            let mut batched = gen_for(kind, 33);
            let threads = plain.profile().threads;
            let mut queues: Vec<Vec<MemRef>> = vec![Vec::new(); threads];
            let mut cursors = vec![0usize; threads];
            for i in 0..20_000usize {
                let t = i % threads;
                let expect = plain.next_ref(ThreadId::new(t));
                if cursors[t] == queues[t].len() {
                    queues[t].clear();
                    cursors[t] = 0;
                    batched.fill_batch(ThreadId::new(t), &mut queues[t], 7);
                }
                let got = if cursors[t] < queues[t].len() {
                    let r = queues[t][cursors[t]];
                    cursors[t] += 1;
                    r
                } else {
                    // Batch boundary: a handoff access is due (or the batch
                    // came up empty); generate it at issue time.
                    batched.next_ref(ThreadId::new(t))
                };
                assert_eq!(got, expect, "{kind:?} ref {i}");
            }
        }
    }

    /// A pending (drawn-but-not-issued) handoff decision survives a
    /// snapshot round-trip: the resumed generator issues the handoff access
    /// without re-drawing.
    #[test]
    fn snapshot_preserves_pending_handoff_draw() {
        let profile = WorkloadProfileBuilder::new("pend")
            .footprint_blocks(50_000)
            .handoff_access_prob(0.5)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(44));
        // Drive fills until one parks a pending handoff draw.
        let mut sink = Vec::new();
        for i in 0..1_000 {
            g.fill_batch(ThreadId::new(i % 4), &mut sink, 8);
            if g.threads.iter().any(|t| t.pending_handoff) {
                break;
            }
        }
        assert!(
            g.threads.iter().any(|t| t.pending_handoff),
            "fill never hit a handoff with prob 0.5"
        );
        let mut buf = SectionBuf::new();
        g.save(&mut buf);
        let mut back = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(44));
        back.restore(&mut SectionReader::new("wl", buf.as_bytes()))
            .unwrap();
        for i in 0..2_000 {
            let t = ThreadId::new(i % 4);
            assert_eq!(back.next_ref(t), g.next_ref(t), "ref {i}");
        }
    }

    #[test]
    fn snapshot_rejects_wrong_thread_count() {
        let profile_2 = WorkloadProfileBuilder::new("two")
            .footprint_blocks(10_000)
            .threads(2)
            .build()
            .unwrap();
        let g = gen_for(WorkloadKind::TpcW, 3);
        let mut buf = SectionBuf::new();
        g.save(&mut buf);
        let mut other = WorkloadGenerator::new(VmId::new(0), &profile_2, &SimRng::from_seed(3));
        let err = other
            .restore(&mut SectionReader::new("wl", buf.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("workload threads"), "{err}");
    }

    #[test]
    #[should_panic]
    fn out_of_range_thread_panics() {
        let mut g = gen_for(WorkloadKind::TpcW, 1);
        let _ = g.next_ref(ThreadId::new(4));
    }

    use crate::profile::LoadPhase;

    fn phased_profile() -> crate::profile::WorkloadProfile {
        WorkloadProfileBuilder::new("phased")
            .footprint_blocks(20_000)
            .shared_access_prob(0.5)
            .recent_reuse_prob(0.0)
            .phases(vec![
                LoadPhase {
                    refs: 4_000,
                    footprint_permille: 1000,
                    sharing_permille: 1000,
                },
                LoadPhase {
                    refs: 4_000,
                    footprint_permille: 100,
                    sharing_permille: 200,
                },
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn phase_schedule_cycles_and_is_deterministic() {
        let profile = phased_profile();
        let mk = || WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(17));
        let mut a = mk();
        let mut b = mk();
        for i in 0..20_000 {
            let t = ThreadId::new(i % 4);
            assert_eq!(a.next_ref(t), b.next_ref(t), "ref {i}");
        }
        // After a whole cycle (8k refs) the schedule is back in phase 0.
        assert_eq!(phase_at(&profile, 0), (0, 4_000));
        assert_eq!(phase_at(&profile, 3_999), (0, 4_000));
        assert_eq!(phase_at(&profile, 4_000), (1, 8_000));
        assert_eq!(phase_at(&profile, 8_000), (0, 12_000));
        assert_eq!(phase_at(&profile, 12_345), (1, 16_000));
    }

    #[test]
    fn narrow_phase_shrinks_the_touched_footprint() {
        // Compare unique blocks touched during the full-footprint phase vs
        // the 10%-footprint phase: the narrow phase must touch far fewer.
        let profile = phased_profile();
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(18));
        let mut wide = HashSet::new();
        let mut narrow = HashSet::new();
        for i in 0..8_000u64 {
            let r = g.next_ref(ThreadId::new((i % 4) as usize));
            let set = if i < 4_000 { &mut wide } else { &mut narrow };
            set.insert(r.address.block());
        }
        assert!(
            narrow.len() * 2 < wide.len(),
            "narrow phase touched {} blocks vs {} in the wide phase",
            narrow.len(),
            wide.len()
        );
        // Narrow-phase blocks come from the *same layout*, restricted to
        // the hottest 10% prefix of each region (phases never re-lay-out
        // the address space).
        let shared = profile.shared_blocks();
        let per_thread = profile.private_blocks_per_thread();
        for b in &narrow {
            let idx = b.vm_block_index();
            if idx < shared {
                assert!(idx < shared / 10, "shared block {idx} outside hot prefix");
            } else {
                let rank = (idx - shared) % per_thread;
                assert!(
                    rank < per_thread / 10,
                    "private block {idx} outside hot prefix"
                );
            }
        }
    }

    #[test]
    fn snapshot_round_trip_mid_phase_continues_exactly() {
        let profile = phased_profile();
        let mk = || WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(19));
        let mut g = mk();
        // Stop mid-phase-1 (narrow), with the schedule state implicit.
        for i in 0..6_500 {
            g.next_ref(ThreadId::new(i % 4));
        }
        let mut buf = SectionBuf::new();
        g.save(&mut buf);
        let mut back = mk();
        back.restore(&mut SectionReader::new("wl", buf.as_bytes()))
            .unwrap();
        assert_eq!(back.phase, g.phase);
        assert_eq!(back.next_phase_at, g.next_phase_at);
        for i in 0..6_000 {
            let t = ThreadId::new(i % 4);
            assert_eq!(back.next_ref(t), g.next_ref(t), "ref {i}");
        }
    }

    #[test]
    fn respawn_restarts_a_fresh_deterministic_stream() {
        let profile = WorkloadKind::TpcH.profile();
        let root = SimRng::from_seed(23);
        let mut g = WorkloadGenerator::new(VmId::new(1), &profile, &root);
        let first: Vec<_> = (0..500).map(|i| g.next_ref(ThreadId::new(i % 4))).collect();

        // First respawn: counts reset, stream differs from the original.
        g.respawn(&root, 1);
        assert_eq!(g.refs_emitted(), 0);
        let second: Vec<_> = (0..500).map(|i| g.next_ref(ThreadId::new(i % 4))).collect();
        assert_ne!(first, second, "respawned stream must be fresh");

        // The same arrival ordinal replays the identical stream.
        let mut h = WorkloadGenerator::new(VmId::new(1), &profile, &root);
        h.respawn(&root, 1);
        let replay: Vec<_> = (0..500).map(|i| h.next_ref(ThreadId::new(i % 4))).collect();
        assert_eq!(second, replay);

        // Different arrival ordinals diverge.
        let mut k = WorkloadGenerator::new(VmId::new(1), &profile, &root);
        k.respawn(&root, 2);
        let third: Vec<_> = (0..500).map(|i| k.next_ref(ThreadId::new(i % 4))).collect();
        assert_ne!(second, third);
    }

    #[test]
    fn respawn_resets_phase_schedule() {
        let profile = phased_profile();
        let root = SimRng::from_seed(29);
        let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &root);
        for i in 0..6_000 {
            g.next_ref(ThreadId::new(i % 4));
        }
        assert_eq!(g.phase, 1);
        g.respawn(&root, 1);
        assert_eq!(g.phase, 0);
        assert_eq!(g.next_phase_at, 4_000);
    }
}
