//! Memory references.

use consim_types::{Address, ThreadId};
use std::fmt;

/// One memory reference emitted by a workload thread.
///
/// # Examples
///
/// ```
/// use consim_workload::MemRef;
/// use consim_types::{Address, ThreadId, VmId};
///
/// let r = MemRef::read(ThreadId::new(0), Address::in_vm(VmId::new(1), 64));
/// assert!(!r.is_write);
/// assert_eq!(r.address.vm(), VmId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The issuing thread (within its workload instance).
    pub thread: ThreadId,
    /// The byte address accessed.
    pub address: Address,
    /// Whether the access is a store.
    pub is_write: bool,
    /// Whether the access targets the workload's shared region (diagnostic;
    /// the hardware never sees this bit).
    pub is_shared_region: bool,
}

impl MemRef {
    /// Creates a load reference.
    pub const fn read(thread: ThreadId, address: Address) -> Self {
        Self {
            thread,
            address,
            is_write: false,
            is_shared_region: false,
        }
    }

    /// Creates a store reference.
    pub const fn write(thread: ThreadId, address: Address) -> Self {
        Self {
            thread,
            address,
            is_write: true,
            is_shared_region: false,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.thread,
            if self.is_write { "st" } else { "ld" },
            self.address
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::VmId;

    #[test]
    fn constructors_set_kind() {
        let a = Address::in_vm(VmId::new(0), 0);
        assert!(!MemRef::read(ThreadId::new(0), a).is_write);
        assert!(MemRef::write(ThreadId::new(0), a).is_write);
    }

    #[test]
    fn display_shows_kind() {
        let a = Address::in_vm(VmId::new(0), 128);
        let r = MemRef::write(ThreadId::new(2), a);
        assert!(r.to_string().contains("st"));
        assert!(r.to_string().contains("thread2"));
    }
}
