//! Workload profiles: the knobs that make a synthetic stream behave like a
//! specific commercial workload.
//!
//! The four built-in profiles are calibrated to the paper's Tables I and II.
//! The *targets* (footprint, cache-to-cache fraction, dirty share) are the
//! paper's numbers; the *knobs* (shared fraction, access/write
//! probabilities, Zipf skews) were tuned empirically against this
//! repository's own engine in the paper's private-cache configuration — see
//! the calibration integration test and EXPERIMENTS.md.

use crate::zipf::ZipfSampler;
use consim_types::SimError;
use std::fmt;

/// The commercial workloads from the paper, plus an escape hatch for custom
/// profiles built with [`WorkloadProfileBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// TPC-W: web commerce (online bookstore), DB2-backed. Large footprint,
    /// modest sharing, mostly clean transfers.
    TpcW,
    /// SPECjbb: Java middleware order processing. Medium footprint, heavy
    /// read-sharing (94 % of transfers clean).
    SpecJbb,
    /// TPC-H: decision support (query 12). Small footprint, intense
    /// read-write sharing from join/merge activity (57 % dirty).
    TpcH,
    /// SPECweb: web serving with Zeus. Large footprint, heavy clean sharing.
    SpecWeb,
    /// A user-defined profile.
    Custom,
}

impl WorkloadKind {
    /// The four workloads the paper evaluates.
    pub const PAPER_SET: [WorkloadKind; 4] = [
        WorkloadKind::TpcW,
        WorkloadKind::SpecJbb,
        WorkloadKind::TpcH,
        WorkloadKind::SpecWeb,
    ];

    /// The calibrated profile for this workload.
    ///
    /// # Panics
    ///
    /// Panics for [`WorkloadKind::Custom`] — build those with
    /// [`WorkloadProfileBuilder`].
    pub fn profile(self) -> WorkloadProfile {
        match self {
            WorkloadKind::TpcW => WorkloadProfile::tpc_w(),
            WorkloadKind::SpecJbb => WorkloadProfile::spec_jbb(),
            WorkloadKind::TpcH => WorkloadProfile::tpc_h(),
            WorkloadKind::SpecWeb => WorkloadProfile::spec_web(),
            WorkloadKind::Custom => panic!("custom profiles have no canonical parameters"),
        }
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::TpcW => "TPC-W",
            WorkloadKind::SpecJbb => "SPECjbb",
            WorkloadKind::TpcH => "TPC-H",
            WorkloadKind::SpecWeb => "SPECweb",
            WorkloadKind::Custom => "custom",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistics the paper reports for a workload (Table II): targets our
/// synthetic streams are calibrated against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTargets {
    /// Fraction of private-cache misses served cache-to-cache.
    pub c2c_fraction: f64,
    /// Fraction of those transfers that are dirty.
    pub dirty_fraction: f64,
    /// Footprint in 64 B blocks.
    pub footprint_blocks: u64,
}

/// One segment of a piecewise per-VM load schedule.
///
/// Phases model the burstiness of real consolidation guests: a VM's
/// effective working set and sharing intensity vary over its run. Each
/// phase lasts `refs` VM-wide references, and while it is in force the
/// generator (a) restricts both Zipf samplers to the hottest
/// `footprint_permille` fraction of their regions (the block *layout* never
/// changes — a phase only narrows which blocks are touched, so shrinking
/// and re-growing the active set exercises cache re-warming) and (b) scales
/// the shared/handoff access probabilities by `sharing_permille`.
///
/// The schedule cycles: after the last phase the first starts again. An
/// empty schedule means the profile's base parameters hold throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoadPhase {
    /// References (summed across the VM's threads) this phase lasts.
    /// Must be nonzero.
    pub refs: u64,
    /// Active-footprint scale in permille of each region's block count
    /// (1..=1000); the sampler is clamped to at least one block.
    pub footprint_permille: u32,
    /// Scale applied to `shared_access_prob` and `handoff_access_prob`,
    /// in permille (0..=1000).
    pub sharing_permille: u32,
}

impl LoadPhase {
    /// Validates the phase parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `refs` is zero, if
    /// `footprint_permille` is outside `1..=1000`, or if
    /// `sharing_permille` exceeds 1000.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.refs == 0 {
            return Err(SimError::invalid_config(
                "load phase must last at least one reference",
            ));
        }
        if self.footprint_permille == 0 || self.footprint_permille > 1000 {
            return Err(SimError::invalid_config(format!(
                "load phase footprint_permille must be in 1..=1000, got {}",
                self.footprint_permille
            )));
        }
        if self.sharing_permille > 1000 {
            return Err(SimError::invalid_config(format!(
                "load phase sharing_permille must be at most 1000, got {}",
                self.sharing_permille
            )));
        }
        Ok(())
    }
}

/// Everything the generator needs to emit one workload's reference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Which workload this models.
    pub kind: WorkloadKind,
    /// Human-readable name.
    pub name: String,
    /// Threads per instance (4 for every paper workload).
    pub threads: usize,
    /// Footprint in 64 B blocks (shared + all private regions).
    pub footprint_blocks: u64,
    /// Fraction of the footprint that is the shared region.
    pub shared_fraction: f64,
    /// Probability an access targets the shared region.
    pub shared_access_prob: f64,
    /// Probability a shared-region access is a store.
    pub shared_write_prob: f64,
    /// Probability a private-region access is a store.
    pub private_write_prob: f64,
    /// Zipf skew of shared-region accesses (hotter = more reuse = more
    /// cache-to-cache transfers).
    pub shared_zipf: f64,
    /// Zipf skew of private-region accesses.
    pub private_zipf: f64,
    /// Probability a reference re-touches one of the thread's recently
    /// accessed blocks (models short-range temporal locality: registers
    /// spilled to stack, loop-carried reuse).
    pub recent_reuse_prob: f64,
    /// How many recently-touched blocks each thread remembers.
    pub recent_window: usize,
    /// Probability a reference participates in *migratory* (hand-off)
    /// sharing: threads process work segments (task-queue items, buffer
    /// pools, lock-protected structures) that move between threads, so a
    /// new owner's misses hit the previous owner's caches. This is the
    /// dominant source of commercial-workload cache-to-cache transfers.
    pub handoff_access_prob: f64,
    /// Work segments in flight per VM (ownership migrates among threads).
    pub handoff_segments: usize,
    /// Blocks per work segment.
    pub handoff_segment_blocks: u64,
    /// Probability the owner dirties each handoff block (controls the
    /// dirty share of cache-to-cache transfers).
    pub handoff_write_prob: f64,
    /// Times the owner touches each block of a segment before releasing it.
    pub handoff_touches: u32,
    /// Memory references constituting one transaction (the unit of the
    /// paper's per-workload "execution" column).
    pub refs_per_transaction: u64,
    /// Default transaction quota for one run.
    pub default_transactions: u64,
    /// The paper's Table II numbers for this workload, if it has them.
    pub paper_targets: Option<PaperTargets>,
    /// Piecewise load schedule (cycled); empty = steady base parameters.
    pub phases: Vec<LoadPhase>,
}

impl WorkloadProfile {
    /// TPC-W: browsing mix, online bookstore (DB2).
    ///
    /// Table II: 15 % c2c (84 % clean / 16 % dirty), 1,125 K blocks.
    pub fn tpc_w() -> Self {
        Self {
            kind: WorkloadKind::TpcW,
            name: "TPC-W".to_string(),
            threads: 4,
            footprint_blocks: 1_125_000,
            shared_fraction: 0.30,
            shared_access_prob: 0.32,
            shared_write_prob: 0.08,
            private_write_prob: 0.10,
            shared_zipf: 0.62,
            private_zipf: 0.55,
            recent_reuse_prob: 0.45,
            recent_window: 48,
            handoff_access_prob: 0.17,
            handoff_segments: 48,
            handoff_segment_blocks: 32,
            handoff_write_prob: 0.15,
            handoff_touches: 3,
            refs_per_transaction: 4_000,
            default_transactions: 25,
            paper_targets: Some(PaperTargets {
                c2c_fraction: 0.15,
                dirty_fraction: 0.16,
                footprint_blocks: 1_125_000,
            }),
            phases: Vec::new(),
        }
    }

    /// SPECjbb: Java order processing, six warehouses.
    ///
    /// Table II: 52 % c2c (94 % clean / 6 % dirty), 606 K blocks.
    pub fn spec_jbb() -> Self {
        Self {
            kind: WorkloadKind::SpecJbb,
            name: "SPECjbb".to_string(),
            threads: 4,
            footprint_blocks: 606_000,
            shared_fraction: 0.45,
            shared_access_prob: 0.62,
            shared_write_prob: 0.020,
            private_write_prob: 0.08,
            shared_zipf: 0.80,
            private_zipf: 0.60,
            recent_reuse_prob: 0.50,
            recent_window: 64,
            handoff_access_prob: 0.56,
            handoff_segments: 48,
            handoff_segment_blocks: 32,
            handoff_write_prob: 0.032,
            handoff_touches: 3,
            refs_per_transaction: 16,
            default_transactions: 6_400,
            paper_targets: Some(PaperTargets {
                c2c_fraction: 0.52,
                dirty_fraction: 0.06,
                footprint_blocks: 606_000,
            }),
            phases: Vec::new(),
        }
    }

    /// TPC-H: decision support, query 12 on DB2.
    ///
    /// Table II: 69 % c2c (43 % clean / 57 % dirty), 172 K blocks.
    pub fn tpc_h() -> Self {
        Self {
            kind: WorkloadKind::TpcH,
            name: "TPC-H".to_string(),
            threads: 4,
            footprint_blocks: 172_000,
            shared_fraction: 0.55,
            shared_access_prob: 0.78,
            shared_write_prob: 0.24,
            private_write_prob: 0.06,
            shared_zipf: 0.85,
            private_zipf: 0.70,
            recent_reuse_prob: 0.55,
            recent_window: 64,
            handoff_access_prob: 0.31,
            handoff_segments: 8,
            handoff_segment_blocks: 24,
            handoff_write_prob: 0.55,
            handoff_touches: 3,
            refs_per_transaction: 100_000,
            default_transactions: 1,
            paper_targets: Some(PaperTargets {
                c2c_fraction: 0.69,
                dirty_fraction: 0.57,
                footprint_blocks: 172_000,
            }),
            phases: Vec::new(),
        }
    }

    /// SPECweb: Zeus web serving, 300 HTTP requests.
    ///
    /// Table II: 37 % c2c (93 % clean / 7 % dirty), 986 K blocks.
    pub fn spec_web() -> Self {
        Self {
            kind: WorkloadKind::SpecWeb,
            name: "SPECweb".to_string(),
            threads: 4,
            footprint_blocks: 986_000,
            shared_fraction: 0.40,
            shared_access_prob: 0.52,
            shared_write_prob: 0.022,
            private_write_prob: 0.07,
            shared_zipf: 0.78,
            private_zipf: 0.58,
            recent_reuse_prob: 0.50,
            recent_window: 64,
            handoff_access_prob: 0.43,
            handoff_segments: 48,
            handoff_segment_blocks: 32,
            handoff_write_prob: 0.042,
            handoff_touches: 3,
            refs_per_transaction: 330,
            default_transactions: 300,
            paper_targets: Some(PaperTargets {
                c2c_fraction: 0.37,
                dirty_fraction: 0.07,
                footprint_blocks: 986_000,
            }),
            phases: Vec::new(),
        }
    }

    /// Number of blocks in the shared region.
    pub fn shared_blocks(&self) -> u64 {
        ((self.footprint_blocks as f64) * self.shared_fraction) as u64
    }

    /// Number of blocks in each thread's private region.
    pub fn private_blocks_per_thread(&self) -> u64 {
        (self.footprint_blocks - self.shared_blocks()) / self.threads as u64
    }

    /// Total references in the default transaction quota.
    pub fn default_total_refs(&self) -> u64 {
        self.refs_per_transaction * self.default_transactions
    }

    /// Validates internal consistency (probabilities in range, nonzero
    /// regions, Zipf skews sane).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.threads == 0 {
            return Err(SimError::invalid_config("workload needs threads"));
        }
        if self.footprint_blocks < self.threads as u64 + 1 {
            return Err(SimError::invalid_config("footprint too small"));
        }
        for (label, p) in [
            ("shared_fraction", self.shared_fraction),
            ("shared_access_prob", self.shared_access_prob),
            ("shared_write_prob", self.shared_write_prob),
            ("private_write_prob", self.private_write_prob),
            ("recent_reuse_prob", self.recent_reuse_prob),
            ("handoff_access_prob", self.handoff_access_prob),
            ("handoff_write_prob", self.handoff_write_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(SimError::invalid_config(format!(
                    "{label} must be a probability, got {p}"
                )));
            }
        }
        ZipfSampler::new(self.shared_blocks().max(1), self.shared_zipf)?;
        ZipfSampler::new(self.private_blocks_per_thread().max(1), self.private_zipf)?;
        if self.recent_reuse_prob > 0.0 && self.recent_window == 0 {
            return Err(SimError::invalid_config(
                "recent reuse requested but the window is empty",
            ));
        }
        if self.handoff_access_prob > 0.0 {
            if self.handoff_segments < self.threads
                || self.handoff_segment_blocks == 0
                || self.handoff_touches == 0
            {
                return Err(SimError::invalid_config(
                    "handoff sharing needs at least one segment per thread, \
                     nonzero segment size, and nonzero touches",
                ));
            }
            let handoff_blocks = self.handoff_segments as u64 * self.handoff_segment_blocks;
            if handoff_blocks > self.shared_blocks() {
                return Err(SimError::invalid_config(
                    "handoff region exceeds the shared region",
                ));
            }
        }
        if self.refs_per_transaction == 0 || self.default_transactions == 0 {
            return Err(SimError::invalid_config(
                "transaction sizing must be nonzero",
            ));
        }
        if self.shared_blocks() == 0 && self.shared_access_prob > 0.0 {
            return Err(SimError::invalid_config(
                "shared accesses requested but shared region is empty",
            ));
        }
        for phase in &self.phases {
            phase.validate()?;
        }
        Ok(())
    }
}

/// Builder for custom workload profiles ([C-BUILDER]).
///
/// Starts from neutral mid-range parameters; every knob can be overridden.
///
/// # Examples
///
/// ```
/// use consim_workload::WorkloadProfileBuilder;
///
/// let profile = WorkloadProfileBuilder::new("my-analytics")
///     .footprint_blocks(50_000)
///     .shared_fraction(0.6)
///     .shared_access_prob(0.8)
///     .shared_write_prob(0.3)
///     .build()?;
/// assert_eq!(profile.name, "my-analytics");
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Starts a custom profile with neutral defaults.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            profile: WorkloadProfile {
                kind: WorkloadKind::Custom,
                name: name.into(),
                threads: 4,
                footprint_blocks: 100_000,
                shared_fraction: 0.4,
                shared_access_prob: 0.5,
                shared_write_prob: 0.1,
                private_write_prob: 0.1,
                shared_zipf: 0.7,
                private_zipf: 0.6,
                recent_reuse_prob: 0.5,
                recent_window: 64,
                handoff_access_prob: 0.0,
                handoff_segments: 8,
                handoff_segment_blocks: 32,
                handoff_write_prob: 0.1,
                handoff_touches: 3,
                refs_per_transaction: 1_000,
                default_transactions: 100,
                paper_targets: None,
                phases: Vec::new(),
            },
        }
    }

    /// Sets the thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.profile.threads = n;
        self
    }

    /// Sets the footprint in 64 B blocks.
    pub fn footprint_blocks(mut self, n: u64) -> Self {
        self.profile.footprint_blocks = n;
        self
    }

    /// Sets the shared-region fraction of the footprint.
    pub fn shared_fraction(mut self, f: f64) -> Self {
        self.profile.shared_fraction = f;
        self
    }

    /// Sets the probability an access targets the shared region.
    pub fn shared_access_prob(mut self, p: f64) -> Self {
        self.profile.shared_access_prob = p;
        self
    }

    /// Sets the store probability for shared accesses.
    pub fn shared_write_prob(mut self, p: f64) -> Self {
        self.profile.shared_write_prob = p;
        self
    }

    /// Sets the store probability for private accesses.
    pub fn private_write_prob(mut self, p: f64) -> Self {
        self.profile.private_write_prob = p;
        self
    }

    /// Sets the shared-region Zipf skew.
    pub fn shared_zipf(mut self, theta: f64) -> Self {
        self.profile.shared_zipf = theta;
        self
    }

    /// Sets the private-region Zipf skew.
    pub fn private_zipf(mut self, theta: f64) -> Self {
        self.profile.private_zipf = theta;
        self
    }

    /// Sets the short-range temporal-reuse probability.
    pub fn recent_reuse_prob(mut self, p: f64) -> Self {
        self.profile.recent_reuse_prob = p;
        self
    }

    /// Sets the temporal-reuse window (blocks remembered per thread).
    pub fn recent_window(mut self, n: usize) -> Self {
        self.profile.recent_window = n;
        self
    }

    /// Sets the migratory-sharing access probability.
    pub fn handoff_access_prob(mut self, p: f64) -> Self {
        self.profile.handoff_access_prob = p;
        self
    }

    /// Sets the number of migrating work segments per VM.
    pub fn handoff_segments(mut self, n: usize) -> Self {
        self.profile.handoff_segments = n;
        self
    }

    /// Sets the blocks per work segment.
    pub fn handoff_segment_blocks(mut self, n: u64) -> Self {
        self.profile.handoff_segment_blocks = n;
        self
    }

    /// Sets the probability the owner dirties each handoff block.
    pub fn handoff_write_prob(mut self, p: f64) -> Self {
        self.profile.handoff_write_prob = p;
        self
    }

    /// Sets how many times the owner touches each segment block.
    pub fn handoff_touches(mut self, n: u32) -> Self {
        self.profile.handoff_touches = n;
        self
    }

    /// Sets the references per transaction.
    pub fn refs_per_transaction(mut self, n: u64) -> Self {
        self.profile.refs_per_transaction = n;
        self
    }

    /// Sets the default transaction quota.
    pub fn default_transactions(mut self, n: u64) -> Self {
        self.profile.default_transactions = n;
        self
    }

    /// Sets the piecewise load schedule (cycled; empty = steady load).
    pub fn phases(mut self, phases: Vec<LoadPhase>) -> Self {
        self.profile.phases = phases;
        self
    }

    /// Validates and returns the profile.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any knob is out of range; see
    /// [`WorkloadProfile::validate`].
    pub fn build(self) -> Result<WorkloadProfile, SimError> {
        self.profile.validate()?;
        Ok(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_validate() {
        for kind in WorkloadKind::PAPER_SET {
            kind.profile().validate().unwrap();
        }
    }

    #[test]
    fn builtin_footprints_match_table2() {
        assert_eq!(WorkloadProfile::tpc_w().footprint_blocks, 1_125_000);
        assert_eq!(WorkloadProfile::spec_jbb().footprint_blocks, 606_000);
        assert_eq!(WorkloadProfile::tpc_h().footprint_blocks, 172_000);
        assert_eq!(WorkloadProfile::spec_web().footprint_blocks, 986_000);
    }

    #[test]
    fn paper_targets_match_table2() {
        let h = WorkloadProfile::tpc_h().paper_targets.unwrap();
        assert!((h.c2c_fraction - 0.69).abs() < 1e-9);
        assert!((h.dirty_fraction - 0.57).abs() < 1e-9);
        let jbb = WorkloadProfile::spec_jbb().paper_targets.unwrap();
        assert!((jbb.dirty_fraction - 0.06).abs() < 1e-9);
    }

    #[test]
    fn regions_partition_footprint() {
        for kind in WorkloadKind::PAPER_SET {
            let p = kind.profile();
            let total = p.shared_blocks() + p.private_blocks_per_thread() * p.threads as u64;
            assert!(total <= p.footprint_blocks);
            // Rounding loses at most `threads` blocks.
            assert!(p.footprint_blocks - total < 2 * p.threads as u64 + 2);
            assert!(p.private_blocks_per_thread() > 0);
        }
    }

    #[test]
    fn sharing_ordering_matches_paper_intuition() {
        // TPC-H is the most sharing-intensive, TPC-W the least.
        let h = WorkloadProfile::tpc_h();
        let w = WorkloadProfile::tpc_w();
        assert!(h.shared_access_prob > w.shared_access_prob);
        assert!(h.shared_write_prob > w.shared_write_prob);
        // SPECjbb and SPECweb share heavily but almost read-only.
        for p in [WorkloadProfile::spec_jbb(), WorkloadProfile::spec_web()] {
            assert!(p.shared_write_prob < 0.05);
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(WorkloadKind::TpcW.name(), "TPC-W");
        assert_eq!(WorkloadKind::TpcH.to_string(), "TPC-H");
    }

    #[test]
    #[should_panic(expected = "custom profiles")]
    fn custom_kind_has_no_canonical_profile() {
        let _ = WorkloadKind::Custom.profile();
    }

    #[test]
    fn builder_overrides_and_validates() {
        let p = WorkloadProfileBuilder::new("x")
            .threads(8)
            .footprint_blocks(10_000)
            .build()
            .unwrap();
        assert_eq!(p.threads, 8);
        assert_eq!(p.kind, WorkloadKind::Custom);

        assert!(WorkloadProfileBuilder::new("bad")
            .shared_access_prob(1.5)
            .build()
            .is_err());
        assert!(WorkloadProfileBuilder::new("bad")
            .shared_zipf(1.0)
            .build()
            .is_err());
        assert!(WorkloadProfileBuilder::new("bad")
            .threads(0)
            .build()
            .is_err());
    }

    #[test]
    fn default_total_refs() {
        let p = WorkloadProfile::spec_jbb();
        assert_eq!(p.default_total_refs(), 16 * 6_400);
    }

    #[test]
    fn phase_validation() {
        let ok = LoadPhase {
            refs: 5_000,
            footprint_permille: 400,
            sharing_permille: 800,
        };
        assert!(ok.validate().is_ok());
        for bad in [
            LoadPhase { refs: 0, ..ok },
            LoadPhase {
                footprint_permille: 0,
                ..ok
            },
            LoadPhase {
                footprint_permille: 1001,
                ..ok
            },
            LoadPhase {
                sharing_permille: 1001,
                ..ok
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
            assert!(
                WorkloadProfileBuilder::new("phased")
                    .phases(vec![bad])
                    .build()
                    .is_err(),
                "{bad:?}"
            );
        }
        let p = WorkloadProfileBuilder::new("phased")
            .phases(vec![ok])
            .build()
            .unwrap();
        assert_eq!(p.phases, vec![ok]);
    }
}
