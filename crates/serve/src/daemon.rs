//! The daemon: a socket front-end over the `consim-job` layer.
//!
//! Architecture (one paragraph): an accept loop hands each connection to
//! its own thread; request handlers translate protocol frames into
//! operations on a shared registry (digest → job entry), an open-ended
//! [`LiveQueue`], and the persistent [`WorkerPool`] executing jobs in
//! `advance()` time slices. Completions flow back through a streaming
//! [`ResultSink`] that updates the registry and pushes terminal frames to
//! subscribers. Every layer under the socket already existed; the daemon
//! adds only the wire.
//!
//! Durability invariant — *an acknowledged submission is never lost*: the
//! handler journals a `job-<digest>.spec` record **before** replying
//! `Submitted`, so whatever dies afterwards, [`Daemon::start`] of the
//! next incarnation re-enqueues every journaled submission. Completed
//! jobs are then served from their `job-<digest>.bin` records without
//! re-simulating; in-flight jobs resume from `job-<digest>.ckpt`, losing
//! at most one time slice. Results are bit-identical either way because a
//! job's outcome is a pure function of its configuration and
//! checkpointing is bit-transparent.
//!
//! Liveness: `Subscribe` attaches a per-connection [`TraceSink`] to the
//! job's per-job [`BroadcastSink`]. With zero subscribers the broadcast
//! wants no event classes, so the engine keeps its non-instrumented fast
//! loop; a subscriber arriving mid-run takes effect at the job's next
//! time slice.

use crate::net::{Endpoint, EndpointSpec, Listener, ServeStream};
use crate::proto::{
    read_frame, read_hello, write_frame, write_hello, JobState, Request, Response, ServeError,
};
use consim::engine::{SimulationConfig, TraceConfig};
use consim::persist;
use consim_job::{
    JobJournal, JobOutput, JobQueue, JobSpec, LiveQueue, PoolConfig, ResultSink, WorkerPool,
};
use consim_trace::{BroadcastSink, EventClass, TraceEvent, TraceSink};
use consim_types::{FastHashMap, SimError};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// How long one response/event write may block before the connection is
/// written off as dead. Bounds the damage a stalled subscriber can do.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Everything configurable about one daemon incarnation.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Where to listen.
    pub endpoint: EndpointSpec,
    /// Journal directory — the durable state shared across incarnations.
    pub journal_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Accesses per `advance()` slice (preemption granularity).
    pub time_slice: Option<u64>,
    /// Checkpoint interval in accesses (crash-loss bound).
    pub checkpoint_every: Option<u64>,
    /// Epoch-snapshot interval (cycles) for subscribed jobs.
    pub epoch_cycles: u64,
    /// Fault injection: exit like a crash after this many simulated
    /// completions (`CONSIM_FAULT=jobs:K`).
    pub fault_after: Option<u64>,
}

impl DaemonConfig {
    /// A daemon on an ephemeral localhost TCP port over `journal_dir`.
    pub fn new(journal_dir: impl Into<PathBuf>) -> Self {
        Self {
            endpoint: EndpointSpec::Tcp("127.0.0.1:0".into()),
            journal_dir: journal_dir.into(),
            workers: 2,
            time_slice: Some(2_000),
            checkpoint_every: Some(2_000),
            epoch_cycles: 20_000,
            fault_after: None,
        }
    }
}

/// Why [`Daemon::wait`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonOutcome {
    /// A client sent `Shutdown`; the backlog was stranded (journaled
    /// submissions survive), in-flight jobs finished and journaled.
    Shutdown,
    /// The fault injector tripped — the simulated-crash exit. In-flight
    /// jobs were journaled; the backlog survives as submission records.
    Faulted,
}

/// One job as the registry tracks it.
#[derive(Debug)]
struct JobEntry {
    index: usize,
    state: EntryState,
    broadcast: Arc<BroadcastSink>,
    /// Subscribed connections awaiting the terminal frame.
    watchers: Vec<Watcher>,
}

#[derive(Debug, Clone)]
enum EntryState {
    Pending,
    Completed { outcome: Arc<Vec<u8>> },
    Cancelled,
    Failed { message: String },
    Abandoned,
}

#[derive(Debug)]
struct Watcher {
    writer: Arc<Mutex<ServeStream>>,
    token: u64,
}

/// State shared by connection handlers, the result sink, and `wait()`.
#[derive(Debug)]
struct Shared {
    queue: Arc<LiveQueue>,
    journal: JobJournal,
    jobs: Mutex<FastHashMap<u64, JobEntry>>,
    pool: Mutex<Option<WorkerPool>>,
    epoch_cycles: u64,
    stop: Mutex<StopState>,
    stop_wake: Condvar,
}

#[derive(Debug, Default)]
struct StopState {
    shutdown: bool,
    draining: bool,
}

impl Shared {
    /// Registers `config` under its digest if new, journaling the
    /// submission record *before* the queue sees it. Returns
    /// `(digest, index, duplicate)`.
    fn submit(
        &self,
        cell: usize,
        mut config: SimulationConfig,
    ) -> Result<(u64, usize, bool), ServeError> {
        let broadcast = Arc::new(BroadcastSink::new());
        config.trace = Some(TraceConfig {
            sink: Arc::clone(&broadcast) as Arc<dyn TraceSink>,
            epoch_cycles: self.epoch_cycles,
            coherence_sample: 64,
        });
        // The trace sink is excluded from the content digest, so the wire
        // config, the journaled spec, and this instrumented copy all name
        // the same job.
        let spec = JobSpec::new(0, cell, config);
        let digest = spec.digest();
        let mut jobs = self.jobs.lock().expect("job registry poisoned");
        if let Some(entry) = jobs.get(&digest) {
            return Ok((digest, entry.index, true));
        }
        self.journal.store_spec(&spec)?;
        let Some(index) = self.queue.push(cell, spec.config().clone()) else {
            // Closed queue: draining or winding down. The spec record
            // must not promise a job this incarnation will never run.
            self.journal.discard_spec(&spec);
            return Err(ServeError::Remote(
                "daemon is draining; submission refused".into(),
            ));
        };
        jobs.insert(
            digest,
            JobEntry {
                index,
                state: EntryState::Pending,
                broadcast,
                watchers: Vec::new(),
            },
        );
        Ok((digest, index, false))
    }

    fn status(&self, digest: u64) -> Response {
        let jobs = self.jobs.lock().expect("job registry poisoned");
        match jobs.get(&digest).map(|e| &e.state) {
            None => Response::JobStatus {
                state: JobState::Unknown,
                outcome: None,
                message: None,
            },
            Some(EntryState::Pending) => Response::JobStatus {
                state: JobState::Pending,
                outcome: None,
                message: None,
            },
            Some(EntryState::Completed { outcome }) => Response::JobStatus {
                state: JobState::Completed,
                outcome: Some(outcome.as_ref().clone()),
                message: None,
            },
            Some(EntryState::Cancelled) => Response::JobStatus {
                state: JobState::Cancelled,
                outcome: None,
                message: None,
            },
            Some(EntryState::Failed { message }) => Response::JobStatus {
                state: JobState::Failed,
                outcome: None,
                message: Some(message.clone()),
            },
            Some(EntryState::Abandoned) => Response::JobStatus {
                state: JobState::Abandoned,
                outcome: None,
                message: None,
            },
        }
    }

    fn cancel(&self, digest: u64) -> Response {
        let jobs = self.jobs.lock().expect("job registry poisoned");
        match jobs.get(&digest) {
            None => Response::Error {
                message: format!("unknown job {digest:016x}"),
            },
            Some(entry) => {
                if matches!(entry.state, EntryState::Pending) {
                    if let Some(pool) = self.pool.lock().expect("pool poisoned").as_ref() {
                        pool.cancel(entry.index);
                    }
                }
                // Terminal states ack too: cancelling a finished job is a
                // no-op, not an error.
                Response::Ack
            }
        }
    }

    /// The terminal state of a job, if it reached one.
    fn terminal(state: &EntryState) -> Option<(JobState, Option<Vec<u8>>)> {
        match state {
            EntryState::Pending => None,
            EntryState::Completed { outcome } => {
                Some((JobState::Completed, Some(outcome.as_ref().clone())))
            }
            EntryState::Cancelled => Some((JobState::Cancelled, None)),
            EntryState::Failed { .. } => Some((JobState::Failed, None)),
            EntryState::Abandoned => Some((JobState::Abandoned, None)),
        }
    }
}

/// The streaming result sink: updates the registry and delivers terminal
/// frames to subscribers. Holds the shared state weakly — the pool owns
/// an `Arc` of this sink, and the shared state owns the pool, so a strong
/// reference here would leak the whole daemon.
#[derive(Debug)]
struct RegistrySink {
    shared: Weak<Shared>,
}

impl ResultSink for RegistrySink {
    fn job_finished(&self, job: &JobSpec, result: Result<JobOutput, SimError>) {
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        let state = match result {
            Ok(JobOutput::Completed { outcome, .. }) => match persist::outcome_to_bytes(&outcome) {
                Ok(bytes) => EntryState::Completed {
                    outcome: Arc::new(bytes),
                },
                Err(e) => EntryState::Failed {
                    message: e.to_string(),
                },
            },
            Ok(JobOutput::Cancelled) => EntryState::Cancelled,
            Ok(JobOutput::Abandoned) => EntryState::Abandoned,
            Err(e) => EntryState::Failed {
                message: e.to_string(),
            },
        };
        // Cancelled and failed jobs must not resurrect on restart; their
        // spec records go. Completed jobs keep theirs — the journal's
        // outcome record makes the restart re-enqueue free. Abandoned
        // jobs keep theirs too: resurrection is the whole point.
        match &state {
            EntryState::Cancelled | EntryState::Failed { .. } => shared.journal.discard_spec(job),
            _ => {}
        }
        let watchers = {
            let mut jobs = shared.jobs.lock().expect("job registry poisoned");
            let Some(entry) = jobs.get_mut(&job.digest()) else {
                return;
            };
            entry.state = state.clone();
            std::mem::take(&mut entry.watchers)
        };
        // Deliver terminal frames outside the registry lock: a slow
        // subscriber socket must not stall every other handler.
        if let Some((job_state, outcome)) = Shared::terminal(&state) {
            let frame = Response::Done {
                state: job_state,
                outcome,
            }
            .encode();
            for watcher in watchers {
                let Some(shared) = self.shared.upgrade() else {
                    return;
                };
                if let Some(entry) = shared
                    .jobs
                    .lock()
                    .expect("job registry poisoned")
                    .get(&job.digest())
                {
                    entry.broadcast.unsubscribe(watcher.token);
                }
                let mut w = watcher.writer.lock().expect("connection writer poisoned");
                let _ = write_frame(&mut *w, &frame);
            }
        }
    }
}

/// A per-connection trace sink: forwards low-volume event classes as
/// [`Response::Event`] frames. Lossy by design — a contended or dead
/// connection drops snapshots rather than stalling the worker that
/// produced them; the terminal `Done` frame is delivered reliably by the
/// result sink instead.
#[derive(Debug)]
struct ConnSink {
    writer: Arc<Mutex<ServeStream>>,
    dead: AtomicBool,
}

impl TraceSink for ConnSink {
    fn record(&self, event: &TraceEvent) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let frame = Response::Event {
            json: event.to_json(),
        }
        .encode();
        if let Ok(mut w) = self.writer.try_lock() {
            if write_frame(&mut *w, &frame).is_err() {
                self.dead.store(true, Ordering::Relaxed);
            }
        }
    }

    fn wants(&self, class: EventClass) -> bool {
        !self.dead.load(Ordering::Relaxed)
            && matches!(class, EventClass::Epoch | EventClass::Lifecycle)
    }
}

/// A running daemon. Start with [`Daemon::start`]; block on
/// [`Daemon::wait`] until a shutdown request or fault.
#[derive(Debug)]
pub struct Daemon {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    accept: std::thread::JoinHandle<()>,
    accept_stop: Arc<AtomicBool>,
}

impl Daemon {
    /// Opens the journal, re-enqueues every journaled submission (crash
    /// recovery), starts the worker pool, binds the socket, and begins
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the journal or socket cannot be
    /// opened, or a journaled submission record is corrupt.
    pub fn start(config: DaemonConfig) -> Result<Daemon, ServeError> {
        let journal = JobJournal::open(&config.journal_dir)?;
        let queue = Arc::new(LiveQueue::new());
        let shared = Arc::new(Shared {
            queue: Arc::clone(&queue),
            journal: journal.clone(),
            jobs: Mutex::new(FastHashMap::default()),
            pool: Mutex::new(None),
            epoch_cycles: config.epoch_cycles,
            stop: Mutex::new(StopState::default()),
            stop_wake: Condvar::new(),
        });
        // Crash recovery: everything submitted-but-not-cancelled in any
        // earlier incarnation re-enters the queue. Completed jobs are
        // served from their outcome records without re-simulating;
        // half-run jobs resume their checkpoints inside the pool.
        for (cell, config) in journal.load_specs()? {
            let (_digest, _index, duplicate) = shared.submit_recovered(cell, config)?;
            debug_assert!(!duplicate, "journal digests are unique by construction");
        }
        let sink = Arc::new(RegistrySink {
            shared: Arc::downgrade(&shared),
        });
        let pool = WorkerPool::start(
            PoolConfig {
                workers: config.workers.max(1),
                time_slice: config.time_slice,
                max_live: 2,
                checkpoint_every: config.checkpoint_every,
                fault_after: config.fault_after,
            },
            Arc::clone(&queue) as Arc<dyn JobQueue>,
            sink as Arc<dyn ResultSink>,
            Some(journal),
            Arc::new(Mutex::new(FastHashMap::default())),
            None,
        );
        *shared.pool.lock().expect("pool poisoned") = Some(pool);
        let (listener, endpoint) = Listener::bind(&config.endpoint)?;
        let accept_stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&accept_stop);
            std::thread::Builder::new()
                .name("consim-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &stop))
                .expect("spawn accept thread")
        };
        Ok(Daemon {
            shared,
            endpoint,
            accept,
            accept_stop,
        })
    }

    /// The concrete endpoint clients should dial.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Blocks until a `Shutdown` request arrives or the fault injector
    /// trips, then winds down: strands the backlog (reported
    /// [`JobOutput::Abandoned`]; submission records survive on disk),
    /// joins the pool (in-flight jobs finish and journal), and stops
    /// accepting.
    pub fn wait(self) -> DaemonOutcome {
        let outcome = loop {
            let stop = self.shared.stop.lock().expect("stop state poisoned");
            if stop.shutdown {
                break DaemonOutcome::Shutdown;
            }
            let faulted = {
                let pool = self.shared.pool.lock().expect("pool poisoned");
                pool.as_ref().map(WorkerPool::faulted).unwrap_or(false)
            };
            if faulted {
                break DaemonOutcome::Faulted;
            }
            let (_guard, _timeout) = self
                .shared
                .stop_wake
                .wait_timeout(stop, Duration::from_millis(100))
                .expect("stop state poisoned");
        };
        // Strand the backlog explicitly on shutdown (on fault the pool
        // already closed the queue; join() reports its strands).
        let stranded = self.shared.queue.abandon();
        let pool = self
            .shared
            .pool
            .lock()
            .expect("pool poisoned")
            .take()
            .expect("pool present until wind-down");
        for job in &stranded {
            // Reported through the same sink path a pool drain uses, so
            // subscribers get their terminal frame either way.
            RegistrySink {
                shared: Arc::downgrade(&self.shared),
            }
            .job_finished(job, Ok(JobOutput::Abandoned));
        }
        pool.join();
        // Unblock the accept loop with a no-op connection to ourselves.
        self.accept_stop.store(true, Ordering::Relaxed);
        let _ = self.endpoint.connect();
        let _ = self.accept.join();
        outcome
    }
}

impl Shared {
    /// [`Shared::submit`] minus the spec write — the record already
    /// exists; writing it again would be wasted I/O on every restart.
    fn submit_recovered(
        &self,
        cell: usize,
        mut config: SimulationConfig,
    ) -> Result<(u64, usize, bool), ServeError> {
        let broadcast = Arc::new(BroadcastSink::new());
        config.trace = Some(TraceConfig {
            sink: Arc::clone(&broadcast) as Arc<dyn TraceSink>,
            epoch_cycles: self.epoch_cycles,
            coherence_sample: 64,
        });
        let spec = JobSpec::new(0, cell, config);
        let digest = spec.digest();
        let mut jobs = self.jobs.lock().expect("job registry poisoned");
        if let Some(entry) = jobs.get(&digest) {
            return Ok((digest, entry.index, true));
        }
        let Some(index) = self.queue.push(cell, spec.config().clone()) else {
            return Err(ServeError::Remote("queue closed during recovery".into()));
        };
        jobs.insert(
            digest,
            JobEntry {
                index,
                state: EntryState::Pending,
                broadcast,
                watchers: Vec::new(),
            },
        );
        Ok((digest, index, false))
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &Listener, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok(stream) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name("consim-serve-conn".into())
                    .spawn(move || handle_connection(&shared, stream))
                    .expect("spawn connection thread");
            }
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted connection):
                // stay alive; clients retry.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Serves one connection until it closes or sends something unspeakable.
/// Never panics: every protocol violation is answered (best-effort) with
/// a typed [`Response::Error`] and a close of *this* connection only.
fn handle_connection(shared: &Arc<Shared>, stream: ServeStream) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(writer));
    let mut reader = stream;
    // Handshake: the client speaks first; a non-protocol peer is dropped
    // before any frame is interpreted.
    if read_hello(&mut reader).is_err() {
        return;
    }
    {
        let mut w = writer.lock().expect("connection writer poisoned");
        if write_hello(&mut *w).is_err() {
            return;
        }
    }
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(payload) => payload,
            Err(ServeError::Disconnected) => return,
            Err(e) => {
                // Truncated/oversized/garbage framing: name the problem,
                // then hang up — the stream offset can no longer be
                // trusted.
                respond(
                    &writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                respond(
                    &writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        match request {
            Request::Ping => respond(&writer, &Response::Pong),
            Request::Submit { cell, config } => {
                let response = match persist::config_from_bytes(&config) {
                    Err(e) => Response::Error {
                        message: format!("bad config record: {e}"),
                    },
                    Ok(config) => match shared.submit(cell as usize, config) {
                        Ok((digest, index, duplicate)) => Response::Submitted {
                            digest,
                            index: index as u64,
                            duplicate,
                        },
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                    },
                };
                respond(&writer, &response);
            }
            Request::Status { digest } => {
                let response = shared.status(digest);
                respond(&writer, &response);
            }
            Request::Cancel { digest } => {
                let response = shared.cancel(digest);
                respond(&writer, &response);
            }
            Request::Subscribe { digest } => {
                let mut jobs = shared.jobs.lock().expect("job registry poisoned");
                match jobs.get_mut(&digest) {
                    None => {
                        drop(jobs);
                        respond(
                            &writer,
                            &Response::Error {
                                message: format!("unknown job {digest:016x}"),
                            },
                        );
                    }
                    Some(entry) => match Shared::terminal(&entry.state) {
                        Some((state, outcome)) => {
                            drop(jobs);
                            respond(&writer, &Response::Ack);
                            respond(&writer, &Response::Done { state, outcome });
                        }
                        None => {
                            // Register before acking so no event between
                            // ack and registration is lost. The writer
                            // mutex orders the ack ahead of any event the
                            // sink races in. (The registry lock is held
                            // across the ack; the sink never takes the
                            // writer lock while holding the registry
                            // lock, so this cannot deadlock.)
                            let sink = Arc::new(ConnSink {
                                writer: Arc::clone(&writer),
                                dead: AtomicBool::new(false),
                            });
                            let token = entry.broadcast.subscribe(sink as Arc<dyn TraceSink>);
                            entry.watchers.push(Watcher {
                                writer: Arc::clone(&writer),
                                token,
                            });
                            respond(&writer, &Response::Ack);
                        }
                    },
                }
            }
            Request::Drain => {
                {
                    let mut stop = shared.stop.lock().expect("stop state poisoned");
                    stop.draining = true;
                }
                // Close = drain: the backlog still runs; only admission
                // stops (LiveQueue::push now refuses).
                shared.queue.close();
                respond(&writer, &Response::Ack);
            }
            Request::Shutdown => {
                respond(&writer, &Response::Ack);
                let mut stop = shared.stop.lock().expect("stop state poisoned");
                stop.shutdown = true;
                shared.stop_wake.notify_all();
                return;
            }
        }
    }
}

/// Best-effort response write; a dead connection is the reader loop's
/// problem to notice, not ours to unwind through.
fn respond(writer: &Arc<Mutex<ServeStream>>, response: &Response) {
    let mut w = writer.lock().expect("connection writer poisoned");
    let frame = response.encode();
    if write_frame(&mut *w, &frame).is_ok() {
        let _ = w.flush();
    }
}
