//! Seeded, crash-injecting stress driver for the serve daemon.
//!
//! The driver owns a daemon *subprocess* (so a crash is a real `SIGKILL`,
//! not a polite unwind), generates a deterministic action plan from one
//! seed — Zipf-sampled job sizes, a weighted mix of submit / status /
//! cancel / subscribe — and replays it from a bounded set of concurrent
//! client threads while a supervisor kills and restarts the daemon under
//! them. At the end it asserts the three properties the daemon promises:
//!
//! 1. **Zero lost jobs** — every acknowledged submission that was not a
//!    cancellation target reaches `Completed`, across any number of
//!    crashes;
//! 2. **Bit-identical results** — each completed outcome record equals a
//!    serial reference run of the same configuration on an unsliced
//!    single-worker pool with tracing off;
//! 3. **A reproducible ledger** — the sorted `digest → outcome-digest`
//!    table hashes to the same value for the same seed, no matter how
//!    the crashes landed.
//!
//! Cancellation targets are excluded from the ledger: whether a cancel
//! beats its job to completion is a genuine race (and a crash may even
//! discard the cancellation), so their terminal state is the one
//! deliberately nondeterministic output.

use crate::client::{Client, StreamFrame};
use crate::net::Endpoint;
use crate::proto::{JobState, ServeError};
use consim::engine::SimulationConfig;
use consim::persist;
use consim_job::{
    CollectingSink, JobOutput, JobQueue, JobSpec, PoolConfig, PrewarmCache, ResultSink,
    StaticQueue, WorkerPool,
};
use consim_snap::fnv1a;
use consim_types::{FastHashMap, SimRng};
use consim_workload::{WorkloadProfileBuilder, ZipfSampler};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a stress run needs; fully determined by the seed except
/// for scheduling noise, which the assertions are immune to.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Master seed: derives the plan, the action mix, and every job.
    pub seed: u64,
    /// Number of distinct jobs to submit.
    pub jobs: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Daemon worker threads.
    pub workers: usize,
    /// `SIGKILL` the daemon once this many submissions were acked
    /// (`None`: never kill).
    pub kill_after: Option<usize>,
    /// Pass `CONSIM_FAULT=jobs:K` to the *first* daemon incarnation
    /// (`None`: no injected fault). Respawns run clean.
    pub fault_after: Option<u64>,
    /// Scratch directory for the journal and the endpoint file.
    pub scratch: PathBuf,
    /// Path of the `consim-serve` binary to supervise.
    pub daemon_bin: PathBuf,
    /// Verify every completed outcome against a serial reference run.
    pub verify: bool,
}

/// What a completed stress run observed.
#[derive(Debug)]
pub struct StressReport {
    /// Jobs planned (== submitted; submissions retry until acked).
    pub jobs: usize,
    /// Jobs that reached `Completed` (every non-cancel-target, plus any
    /// cancel target the cancel lost the race to).
    pub completed: usize,
    /// Cancellation targets that ended `Cancelled`.
    pub cancelled: usize,
    /// Daemon incarnations beyond the first (kills + fault exits).
    pub restarts: usize,
    /// Live `Event` frames observed on subscribed streams.
    pub events_seen: usize,
    /// The ledger: one `"<config-digest> <outcome-digest>"` line per
    /// non-cancel-target job, sorted by config digest.
    pub ledger: String,
    /// `fnv1a` of [`StressReport::ledger`] — the one number a CI run
    /// compares across crash schedules.
    pub ledger_digest: u64,
}

/// One planned job.
#[derive(Debug, Clone)]
struct PlannedJob {
    cell: usize,
    config: SimulationConfig,
    digest: u64,
    /// Whether the plan also cancels this job.
    cancel: bool,
}

/// One scripted client action. `Submit` must eventually ack; the rest
/// are fire-and-forget probes that tolerate crashes mid-flight.
#[derive(Debug, Clone, Copy)]
enum Action {
    Submit(usize),
    Status(usize),
    Cancel(usize),
    Subscribe(usize),
}

/// Builds the deterministic job plan: Zipf-ranked sizes (most jobs
/// small, a heavy tail of big ones), one unique seed per job.
fn plan_jobs(seed: u64, jobs: usize) -> Result<Vec<PlannedJob>, ServeError> {
    let mut rng = SimRng::from_seed(seed).derive("stress-plan");
    let zipf = ZipfSampler::new(8, 0.7).map_err(ServeError::Sim)?;
    let mut planned = Vec::with_capacity(jobs);
    for index in 0..jobs {
        let rank = zipf.sample(&mut rng);
        let refs = 300 + 150 * rank;
        let profile = WorkloadProfileBuilder::new("stress")
            .footprint_blocks(1_500 + 250 * rank)
            .build()
            .map_err(ServeError::Sim)?;
        let mut builder = SimulationConfig::builder();
        builder
            .workload(profile)
            .refs_per_vm(refs)
            .warmup_refs_per_vm(refs / 4)
            .seed(seed.wrapping_mul(10_000).wrapping_add(index as u64));
        let config = builder.build().map_err(ServeError::Sim)?;
        let digest = JobSpec::new(index, index, config.clone()).digest();
        let cancel = rng.next_u64() % 100 < 8;
        planned.push(PlannedJob {
            cell: index,
            config,
            digest,
            cancel,
        });
    }
    let mut digests: Vec<u64> = planned.iter().map(|j| j.digest).collect();
    digests.sort_unstable();
    digests.dedup();
    if digests.len() != planned.len() {
        return Err(ServeError::Malformed(
            "planned jobs are not digest-unique; the plan seeds collide".into(),
        ));
    }
    Ok(planned)
}

/// Scripts the action sequence: every job submitted once, interleaved
/// with status probes and subscriptions against earlier jobs, and a
/// cancel right after each cancellation target's submit.
fn plan_actions(seed: u64, jobs: &[PlannedJob]) -> Vec<Action> {
    let mut rng = SimRng::from_seed(seed).derive("stress-actions");
    let mut actions = Vec::new();
    for (index, job) in jobs.iter().enumerate() {
        actions.push(Action::Submit(index));
        if job.cancel {
            actions.push(Action::Cancel(index));
        }
        if index > 0 {
            let earlier = (rng.next_u64() % index as u64) as usize;
            let roll = rng.next_u64() % 100;
            if roll < 25 {
                actions.push(Action::Status(earlier));
            } else if roll < 40 {
                actions.push(Action::Subscribe(earlier));
            }
        }
    }
    actions
}

/// The daemon subprocess and its lifecycle. One supervisor thread owns
/// the [`Child`]; everything else communicates through flags.
struct Supervisor {
    bin: PathBuf,
    journal: PathBuf,
    port_file: PathBuf,
    workers: usize,
    kill_requested: AtomicBool,
    done: AtomicBool,
    restarts: AtomicUsize,
    child: Mutex<Option<Child>>,
}

impl Supervisor {
    fn spawn_daemon(&self, fault: Option<u64>) -> Result<(), ServeError> {
        // Remove the stale endpoint first: clients must not dial a dead
        // incarnation's address believing it fresh.
        let _ = std::fs::remove_file(&self.port_file);
        let mut cmd = Command::new(&self.bin);
        cmd.arg("--journal")
            .arg(&self.journal)
            .arg("--workers")
            .arg(self.workers.to_string())
            .arg("--time-slice")
            .arg("2000")
            .arg("--checkpoint-every")
            .arg("2000")
            .arg("--port-file")
            .arg(&self.port_file)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .env_remove("CONSIM_FAULT");
        if let Some(k) = fault {
            cmd.env("CONSIM_FAULT", format!("jobs:{k}"));
        }
        let child = cmd
            .spawn()
            .map_err(|e| ServeError::Io(format!("spawn {}: {e}", self.bin.display())))?;
        *self.child.lock().expect("supervisor poisoned") = Some(child);
        Ok(())
    }

    /// The supervision loop: respawn on unexpected death, kill on
    /// request, stand down once the run is done and the daemon exited.
    fn run(&self) {
        loop {
            std::thread::sleep(Duration::from_millis(25));
            let mut slot = self.child.lock().expect("supervisor poisoned");
            let Some(child) = slot.as_mut() else {
                return;
            };
            if self.kill_requested.swap(false, Ordering::Relaxed) {
                let _ = child.kill();
                let _ = child.wait();
                *slot = None;
                drop(slot);
                self.restarts.fetch_add(1, Ordering::Relaxed);
                self.spawn_daemon(None).expect("respawn daemon after kill");
                continue;
            }
            if let Ok(Some(_status)) = child.try_wait() {
                *slot = None;
                if self.done.load(Ordering::Relaxed) {
                    return;
                }
                drop(slot);
                // Fault exit (or anything else unexpected): the journal
                // is the durable state; a clean respawn must recover
                // every acked job.
                self.restarts.fetch_add(1, Ordering::Relaxed);
                self.spawn_daemon(None).expect("respawn daemon after exit");
            }
        }
    }

    /// The current endpoint, if the live incarnation has published one.
    fn endpoint(&self) -> Option<Endpoint> {
        let text = std::fs::read_to_string(&self.port_file).ok()?;
        Endpoint::from_str(text.trim()).ok()
    }
}

/// Connects to whatever daemon incarnation is currently alive, retrying
/// through kills and restarts until `deadline`.
fn connect(sup: &Supervisor, deadline: Instant) -> Result<Client, ServeError> {
    loop {
        if let Some(endpoint) = sup.endpoint() {
            if let Ok(client) = Client::connect(&endpoint) {
                let _ = client.set_timeout(Some(Duration::from_secs(5)));
                return Ok(client);
            }
        }
        if Instant::now() >= deadline {
            return Err(ServeError::Io("daemon never became reachable".into()));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs the scripted actions from one client thread, reconnecting
/// across crashes. Submissions retry until acked; probes are allowed to
/// die with the incarnation they hit.
fn client_loop(
    sup: &Supervisor,
    jobs: &[PlannedJob],
    actions: &[Action],
    cursor: &AtomicUsize,
    submits_acked: &AtomicUsize,
    events_seen: &AtomicUsize,
    deadline: Instant,
) -> Result<(), ServeError> {
    let mut client: Option<Client> = None;
    loop {
        let slot = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(action) = actions.get(slot) else {
            return Ok(());
        };
        match *action {
            Action::Submit(index) => {
                let job = &jobs[index];
                // Must ack: the zero-lost-jobs assertion only covers
                // submissions the daemon acknowledged.
                loop {
                    if client.is_none() {
                        client = Some(connect(sup, deadline)?);
                    }
                    let c = client.as_mut().expect("connected above");
                    match c.submit(job.cell, &job.config) {
                        Ok(ack) => {
                            debug_assert_eq!(ack.digest, job.digest, "wire digest disagrees");
                            submits_acked.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(_) => {
                            // Crash mid-submit, or a dead connection:
                            // reconnect and resubmit. A duplicate ack is
                            // fine — digest-keyed admission dedupes.
                            client = None;
                            if Instant::now() >= deadline {
                                return Err(ServeError::Io(
                                    "submission never acked before deadline".into(),
                                ));
                            }
                        }
                    }
                }
            }
            Action::Status(index) => {
                if client.is_none() {
                    client = connect(sup, deadline).ok();
                }
                if let Some(c) = client.as_mut() {
                    if c.status(jobs[index].digest).is_err() {
                        client = None;
                    }
                }
            }
            Action::Cancel(index) => {
                if client.is_none() {
                    client = connect(sup, deadline).ok();
                }
                if let Some(c) = client.as_mut() {
                    if c.cancel(jobs[index].digest).is_err() {
                        client = None;
                    }
                }
            }
            Action::Subscribe(index) => {
                // A subscription dedicates the connection to the stream;
                // drain a few frames, then give the connection up.
                let Ok(mut c) = connect(sup, deadline) else {
                    continue;
                };
                let _ = c.set_timeout(Some(Duration::from_millis(500)));
                if c.subscribe(jobs[index].digest).is_ok() {
                    for _ in 0..16 {
                        match c.next_stream_frame() {
                            Ok(StreamFrame::Event(_)) => {
                                events_seen.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(StreamFrame::Done { .. }) | Err(_) => break,
                        }
                    }
                }
            }
        }
    }
}

/// Polls every job to a terminal state, returning the completed outcome
/// bytes by digest. Non-cancel-target jobs must complete; that's the
/// zero-lost-jobs assertion.
fn settle(
    sup: &Supervisor,
    jobs: &[PlannedJob],
    deadline: Instant,
) -> Result<(FastHashMap<u64, Vec<u8>>, usize), ServeError> {
    let mut outcomes: FastHashMap<u64, Vec<u8>> = FastHashMap::default();
    let mut cancelled = 0usize;
    let mut client: Option<Client> = None;
    for job in jobs {
        loop {
            if Instant::now() >= deadline {
                return Err(ServeError::Io(format!(
                    "job {:016x} never settled before the deadline",
                    job.digest
                )));
            }
            if client.is_none() {
                client = Some(connect(sup, deadline)?);
            }
            let reply = match client.as_mut().expect("connected above").status(job.digest) {
                Ok(reply) => reply,
                Err(_) => {
                    client = None;
                    continue;
                }
            };
            match reply.state {
                JobState::Completed => {
                    outcomes.insert(
                        job.digest,
                        reply.outcome_bytes.ok_or_else(|| {
                            ServeError::Malformed("Completed status carried no outcome".into())
                        })?,
                    );
                    break;
                }
                JobState::Cancelled if job.cancel => {
                    cancelled += 1;
                    break;
                }
                // A cancel target the daemon forgot entirely: the crash
                // discarded its record after cancellation. Terminal.
                JobState::Unknown if job.cancel => break,
                JobState::Failed => {
                    return Err(ServeError::Remote(format!(
                        "job {:016x} failed: {}",
                        job.digest,
                        reply.message.unwrap_or_default()
                    )));
                }
                // Pending, Abandoned (transient during wind-down), or a
                // post-restart Unknown for a job whose resubmission is
                // still racing in: poll again.
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
    Ok((outcomes, cancelled))
}

/// Runs `config` serially — one worker, no slicing, no journal, no
/// tracing — and returns the canonical outcome record bytes.
fn reference_outcome(job: &PlannedJob) -> Result<Vec<u8>, ServeError> {
    let queue = Arc::new(StaticQueue::new(vec![JobSpec::new(
        0,
        job.cell,
        job.config.clone(),
    )]));
    let sink = Arc::new(CollectingSink::new());
    let pool = WorkerPool::start(
        PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        },
        Arc::clone(&queue) as Arc<dyn JobQueue>,
        Arc::clone(&sink) as Arc<dyn ResultSink>,
        None,
        PrewarmCache::default(),
        None,
    );
    pool.join();
    let result = sink
        .take()
        .into_values()
        .next()
        .ok_or_else(|| ServeError::Malformed("reference run produced no result".into()))?;
    match result.map_err(ServeError::Sim)? {
        JobOutput::Completed { outcome, .. } => {
            persist::outcome_to_bytes(&outcome).map_err(ServeError::Sim)
        }
        other => Err(ServeError::Malformed(format!(
            "reference run did not complete: {other:?}"
        ))),
    }
}

/// Runs the whole stress scenario. See the module docs for the
/// properties asserted; any violation is an `Err`, never a panic.
///
/// # Errors
///
/// Returns [`ServeError`] when the daemon cannot be spawned or reached,
/// a job is lost, an outcome diverges from its serial reference, or the
/// run exceeds its internal deadline.
pub fn run(config: &StressConfig) -> Result<StressReport, ServeError> {
    std::fs::create_dir_all(&config.scratch)
        .map_err(|e| ServeError::Io(format!("create {}: {e}", config.scratch.display())))?;
    let jobs = plan_jobs(config.seed, config.jobs)?;
    let actions = plan_actions(config.seed, &jobs);
    let sup = Arc::new(Supervisor {
        bin: config.daemon_bin.clone(),
        journal: config.scratch.join("journal"),
        port_file: config.scratch.join("endpoint"),
        workers: config.workers.max(1),
        kill_requested: AtomicBool::new(false),
        done: AtomicBool::new(false),
        restarts: AtomicUsize::new(0),
        child: Mutex::new(None),
    });
    sup.spawn_daemon(config.fault_after)?;
    let supervisor_thread = {
        let sup = Arc::clone(&sup);
        std::thread::Builder::new()
            .name("stress-supervisor".into())
            .spawn(move || sup.run())
            .expect("spawn supervisor thread")
    };
    let deadline = Instant::now() + Duration::from_secs(300);
    let cursor = Arc::new(AtomicUsize::new(0));
    let submits_acked = Arc::new(AtomicUsize::new(0));
    let events_seen = Arc::new(AtomicUsize::new(0));

    // Client fleet.
    let mut client_threads = Vec::new();
    for c in 0..config.clients.max(1) {
        let sup = Arc::clone(&sup);
        let jobs = jobs.clone();
        let actions = actions.clone();
        let cursor = Arc::clone(&cursor);
        let submits_acked = Arc::clone(&submits_acked);
        let events_seen = Arc::clone(&events_seen);
        client_threads.push(
            std::thread::Builder::new()
                .name(format!("stress-client-{c}"))
                .spawn(move || {
                    client_loop(
                        &sup,
                        &jobs,
                        &actions,
                        &cursor,
                        &submits_acked,
                        &events_seen,
                        deadline,
                    )
                })
                .expect("spawn client thread"),
        );
    }

    // The kill trigger: one SIGKILL once enough submissions were acked.
    if let Some(kill_after) = config.kill_after {
        while submits_acked.load(Ordering::Relaxed) < kill_after {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        sup.kill_requested.store(true, Ordering::Relaxed);
    }

    for thread in client_threads {
        thread.join().expect("client thread panicked")?;
    }

    // Settle: every job to a terminal state, stragglers included.
    let (outcomes, cancelled) = settle(&sup, &jobs, deadline)?;

    // Wind the daemon down for real before verifying.
    sup.done.store(true, Ordering::Relaxed);
    let mut shutdown_client = connect(&sup, deadline)?;
    shutdown_client.drain()?;
    shutdown_client.shutdown()?;
    supervisor_thread
        .join()
        .expect("supervisor thread panicked");

    // Verification + ledger over the deterministic job set.
    let mut ledger_lines = Vec::new();
    for job in jobs.iter().filter(|j| !j.cancel) {
        let bytes = outcomes.get(&job.digest).ok_or_else(|| {
            ServeError::Malformed(format!(
                "job {:016x} settled without an outcome",
                job.digest
            ))
        })?;
        if config.verify {
            let reference = reference_outcome(job)?;
            if *bytes != reference {
                return Err(ServeError::Malformed(format!(
                    "job {:016x}: daemon outcome diverges from the serial reference",
                    job.digest
                )));
            }
        }
        ledger_lines.push(format!("{:016x} {:016x}", job.digest, fnv1a(bytes)));
    }
    ledger_lines.sort();
    let mut ledger = ledger_lines.join("\n");
    ledger.push('\n');
    let ledger_digest = fnv1a(ledger.as_bytes());
    Ok(StressReport {
        jobs: jobs.len(),
        completed: outcomes.len(),
        cancelled,
        restarts: sup.restarts.load(Ordering::Relaxed),
        events_seen: events_seen.load(Ordering::Relaxed),
        ledger,
        ledger_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_digest_unique() {
        let a = plan_jobs(42, 50).unwrap();
        let b = plan_jobs(42, 50).unwrap();
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest, y.digest);
            assert_eq!(x.cancel, y.cancel);
        }
        let cancels = a.iter().filter(|j| j.cancel).count();
        assert!(cancels > 0, "the mix should include cancellations");
        assert!(cancels < a.len() / 2, "cancels should stay a minority");
        let sizes: std::collections::HashSet<u64> =
            a.iter().map(|j| j.config.refs_per_vm).collect();
        assert!(sizes.len() > 1, "Zipf sizing should vary job lengths");
    }

    #[test]
    fn action_script_submits_every_job_exactly_once() {
        let jobs = plan_jobs(7, 40).unwrap();
        let actions = plan_actions(7, &jobs);
        let mut submits = vec![0usize; jobs.len()];
        let mut cancels = 0usize;
        for action in &actions {
            match *action {
                Action::Submit(i) => submits[i] += 1,
                Action::Cancel(_) => cancels += 1,
                _ => {}
            }
        }
        assert!(submits.iter().all(|&n| n == 1));
        assert_eq!(cancels, jobs.iter().filter(|j| j.cancel).count());
        assert!(
            actions.len() > jobs.len(),
            "probes should interleave with submissions"
        );
    }
}
