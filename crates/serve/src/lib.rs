//! Consolidation-as-a-service: a long-running daemon over the
//! `consim-job` execution layer.
//!
//! The batch bins (`run_all`, `sweep`) run one experiment and exit. This
//! crate keeps the worker pool resident: clients connect over TCP or a
//! Unix-domain socket, speak a length-prefixed versioned binary protocol
//! ([`proto`]), and submit [`consim::engine::SimulationConfig`]s that
//! execute in `advance()` time slices on the shared
//! [`consim_job::WorkerPool`]. Jobs are identified by content digest;
//! every acknowledged submission is journaled before the ack, so a
//! killed daemon restarted over the same journal directory resumes (or
//! serves) every job it ever accepted — and, because a job's outcome is
//! a pure function of its configuration, produces bit-identical results
//! either way.
//!
//! Module map:
//!
//! * [`proto`] — wire format: framing, message codecs, [`proto::ServeError`];
//! * [`net`] — TCP/Unix transport behind one [`net::ServeStream`] type;
//! * [`daemon`] — the server: registry, recovery, streaming sinks;
//! * [`client`] — a synchronous client used by the bins and tests;
//! * [`stress`] — the seeded crash-injecting stress driver
//!   (`consim-serve --bin stress`).

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod net;
pub mod proto;
pub mod stress;

pub use client::{Client, StatusReply, StreamFrame, Submitted};
pub use daemon::{Daemon, DaemonConfig, DaemonOutcome};
pub use net::{Endpoint, EndpointSpec};
pub use proto::{JobState, ServeError};
