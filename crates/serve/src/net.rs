//! Transport plumbing: the daemon listens on either a TCP socket or a
//! Unix-domain socket; everything above this module is
//! transport-agnostic.

use crate::proto::ServeError;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

/// Where a daemon should listen (the TCP form may name port 0; the bound
/// port is reported back as an [`Endpoint`]).
#[derive(Debug, Clone)]
pub enum EndpointSpec {
    /// A TCP address, e.g. `127.0.0.1:0`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// A concrete, connectable endpoint. Its `Display` form (`tcp:ADDR` /
/// `unix:PATH`) round-trips through [`FromStr`] — that string is what a
/// daemon writes to its `--port-file` for clients to discover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A bound TCP address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl FromStr for Endpoint {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, ServeError> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            return addr
                .parse()
                .map(Endpoint::Tcp)
                .map_err(|e| ServeError::Malformed(format!("bad tcp endpoint {addr:?}: {e}")));
        }
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        Err(ServeError::Malformed(format!(
            "endpoint {s:?} must start with tcp: or unix:"
        )))
    }
}

impl Endpoint {
    /// Opens a connection (no handshake — see `Client::connect`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the daemon is not reachable.
    pub fn connect(&self) -> Result<ServeStream, ServeError> {
        match self {
            Endpoint::Tcp(addr) => TcpStream::connect(addr)
                .map(ServeStream::Tcp)
                .map_err(|e| ServeError::Io(format!("connect {addr}: {e}"))),
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(ServeStream::Unix)
                .map_err(|e| ServeError::Io(format!("connect {}: {e}", path.display()))),
        }
    }
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum ServeStream {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-domain transport.
    Unix(UnixStream),
}

impl ServeStream {
    /// A second handle onto the same connection (reads and writes can
    /// then live on different threads).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on descriptor duplication failure.
    pub fn try_clone(&self) -> Result<ServeStream, ServeError> {
        match self {
            ServeStream::Tcp(s) => s
                .try_clone()
                .map(ServeStream::Tcp)
                .map_err(|e| ServeError::Io(format!("clone stream: {e}"))),
            ServeStream::Unix(s) => s
                .try_clone()
                .map(ServeStream::Unix)
                .map_err(|e| ServeError::Io(format!("clone stream: {e}"))),
        }
    }

    /// Bounds how long one blocking read may park (None = forever).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the option cannot be set.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        match self {
            ServeStream::Tcp(s) => s.set_read_timeout(timeout),
            ServeStream::Unix(s) => s.set_read_timeout(timeout),
        }
        .map_err(|e| ServeError::Io(format!("set read timeout: {e}")))
    }

    /// Bounds how long one blocking write may park (None = forever). A
    /// daemon sets this on streaming connections so one stalled
    /// subscriber cannot wedge a worker thread.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the option cannot be set.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        match self {
            ServeStream::Tcp(s) => s.set_write_timeout(timeout),
            ServeStream::Unix(s) => s.set_write_timeout(timeout),
        }
        .map_err(|e| ServeError::Io(format!("set write timeout: {e}")))
    }
}

impl Read for ServeStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ServeStream::Tcp(s) => s.read(buf),
            ServeStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ServeStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ServeStream::Tcp(s) => s.write(buf),
            ServeStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ServeStream::Tcp(s) => s.flush(),
            ServeStream::Unix(s) => s.flush(),
        }
    }
}

/// The daemon's listening socket.
#[derive(Debug)]
pub enum Listener {
    /// TCP transport.
    Tcp(TcpListener),
    /// Unix-domain transport (unlinked when the daemon exits).
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `spec`, reporting the concrete endpoint (TCP port 0 resolves
    /// to the assigned port). A stale Unix socket file left by a killed
    /// daemon is removed first — the journal, not the socket, is the
    /// durable state.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(spec: &EndpointSpec) -> Result<(Listener, Endpoint), ServeError> {
        match spec {
            EndpointSpec::Tcp(addr) => {
                let listener = TcpListener::bind(addr)
                    .map_err(|e| ServeError::Io(format!("bind {addr}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| ServeError::Io(format!("local addr: {e}")))?;
                Ok((Listener::Tcp(listener), Endpoint::Tcp(local)))
            }
            EndpointSpec::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| ServeError::Io(format!("bind {}: {e}", path.display())))?;
                Ok((
                    Listener::Unix(listener, path.clone()),
                    Endpoint::Unix(path.clone()),
                ))
            }
        }
    }

    /// Waits for the next connection.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on accept failure.
    pub fn accept(&self) -> Result<ServeStream, ServeError> {
        match self {
            Listener::Tcp(l) => l
                .accept()
                .map(|(s, _)| ServeStream::Tcp(s))
                .map_err(|e| ServeError::Io(format!("accept: {e}"))),
            Listener::Unix(l, _) => l
                .accept()
                .map(|(s, _)| ServeStream::Unix(s))
                .map_err(|e| ServeError::Io(format!("accept: {e}"))),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}
