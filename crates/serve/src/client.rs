//! A small synchronous client for the serve protocol.
//!
//! One [`Client`] wraps one connection. Plain request/response methods
//! (`submit`, `status`, `cancel`, …) block for exactly one reply frame;
//! [`Client::subscribe`] switches the connection into streaming mode,
//! after which [`Client::next_stream_frame`] yields interleaved
//! [`Response::Event`] frames until the terminal [`Response::Done`].

use crate::net::Endpoint;
use crate::net::ServeStream;
use crate::proto::{
    read_frame, read_hello, write_frame, write_hello, JobState, Request, Response, ServeError,
};
use consim::engine::{SimulationConfig, SimulationOutcome};
use consim::persist;
use std::io::Write as _;
use std::time::Duration;

/// What `submit` acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submitted {
    /// Content digest identifying the job from now on.
    pub digest: u64,
    /// Queue index assigned by the daemon (diagnostic only).
    pub index: u64,
    /// Whether the daemon already knew this exact configuration.
    pub duplicate: bool,
}

/// One `Status` reply, decoded.
#[derive(Debug, Clone)]
pub struct StatusReply {
    /// Where the job stands.
    pub state: JobState,
    /// The decoded outcome, present iff `state == Completed`.
    pub outcome: Option<SimulationOutcome>,
    /// The raw outcome record bytes (for ledger digests, byte
    /// comparisons) — same presence as `outcome`.
    pub outcome_bytes: Option<Vec<u8>>,
    /// Failure detail, present iff `state == Failed`.
    pub message: Option<String>,
}

/// One frame from a subscribed stream.
#[derive(Debug, Clone)]
pub enum StreamFrame {
    /// A live trace snapshot, as one JSON object.
    Event(String),
    /// The job reached a terminal state; the stream is over.
    Done {
        /// The terminal state.
        state: JobState,
        /// Raw outcome record bytes iff `state == Completed`.
        outcome: Option<Vec<u8>>,
    },
}

/// One protocol connection to a daemon.
#[derive(Debug)]
pub struct Client {
    stream: ServeStream,
}

impl Client {
    /// Dials `endpoint` and performs the version handshake.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the daemon is unreachable or speaks a
    /// different protocol version.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ServeError> {
        let mut stream = endpoint.connect()?;
        write_hello(&mut stream)?;
        stream.flush().map_err(|e| ServeError::Io(e.to_string()))?;
        read_hello(&mut stream)?;
        Ok(Client { stream })
    }

    /// Bounds how long any single reply may take (None = forever).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the option cannot be set.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &request.encode())?;
        self.stream
            .flush()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let payload = read_frame(&mut self.stream)?;
        let response = Response::decode(&payload)?;
        if let Response::Error { message } = response {
            return Err(ServeError::Remote(message));
        }
        Ok(response)
    }

    /// Submits a configuration; the daemon journals it before this
    /// returns, so an acknowledged submission survives a daemon crash.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Remote`] when the daemon refuses (e.g.
    /// draining), transport errors otherwise.
    pub fn submit(
        &mut self,
        cell: usize,
        config: &SimulationConfig,
    ) -> Result<Submitted, ServeError> {
        let bytes = persist::config_to_bytes(config)?;
        match self.request(&Request::Submit {
            cell: cell as u64,
            config: bytes,
        })? {
            Response::Submitted {
                digest,
                index,
                duplicate,
            } => Ok(Submitted {
                digest,
                index,
                duplicate,
            }),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// Asks where a job stands.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport failure or a malformed
    /// outcome record.
    pub fn status(&mut self, digest: u64) -> Result<StatusReply, ServeError> {
        match self.request(&Request::Status { digest })? {
            Response::JobStatus {
                state,
                outcome,
                message,
            } => {
                let decoded = outcome
                    .as_deref()
                    .map(persist::outcome_from_bytes)
                    .transpose()?;
                Ok(StatusReply {
                    state,
                    outcome: decoded,
                    outcome_bytes: outcome,
                    message,
                })
            }
            other => Err(unexpected("JobStatus", &other)),
        }
    }

    /// Requests early termination of a job. Acked even when the job is
    /// already terminal (cancelling a finished job is a no-op).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Remote`] for an unknown digest.
    pub fn cancel(&mut self, digest: u64) -> Result<(), ServeError> {
        match self.request(&Request::Cancel { digest })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Subscribes this connection to a job's live trace stream. After
    /// the `Ok`, drain frames with [`Client::next_stream_frame`]; the
    /// connection carries only stream frames from here on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Remote`] for an unknown digest.
    pub fn subscribe(&mut self, digest: u64) -> Result<(), ServeError> {
        match self.request(&Request::Subscribe { digest })? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// The next frame of a subscribed stream. Returns `Done` exactly
    /// once, as the final frame.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the daemon dies mid-stream.
    pub fn next_stream_frame(&mut self) -> Result<StreamFrame, ServeError> {
        let payload = read_frame(&mut self.stream)?;
        match Response::decode(&payload)? {
            Response::Event { json } => Ok(StreamFrame::Event(json)),
            Response::Done { state, outcome } => Ok(StreamFrame::Done { state, outcome }),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(unexpected("Event|Done", &other)),
        }
    }

    /// Stops admission: queued and running jobs finish, new submissions
    /// are refused.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport failure.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Drain)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Asks the daemon to exit. In-flight jobs finish and journal; the
    /// backlog is stranded but survives on disk as submission records.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport failure.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on transport failure.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::Malformed(format!("expected {wanted} reply, got {got:?}"))
}
