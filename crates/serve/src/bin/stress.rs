//! `stress` — seeded crash-injecting stress driver for `consim-serve`.
//!
//! ```text
//! stress [--seed N] [--jobs N] [--clients N] [--workers N]
//!        [--kill-after N] [--fault-after N] [--scratch DIR]
//!        [--daemon PATH] [--ledger PATH] [--no-verify]
//! ```
//!
//! Drives a daemon subprocess through a deterministic submit / status /
//! cancel / subscribe mix, optionally SIGKILLs it mid-run
//! (`--kill-after`, counted in acked submissions) and/or arranges an
//! injected fault exit (`--fault-after`, counted in completed jobs),
//! asserts zero lost jobs and serial-reference-identical outcomes, and
//! prints `ledger_digest=<hex>` — the number a CI run compares across
//! crash schedules. With `--ledger PATH` the full ledger is written
//! there for byte-level comparison.

use consim_bench::cli;
use consim_serve::stress::{self, StressConfig};
use std::path::PathBuf;

fn main() {
    let mut flags = cli::BenchFlags::from_env("stress");
    let config = match parse(&mut flags) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("stress: {msg}");
            eprintln!(
                "usage: stress [--seed N] [--jobs N] [--clients N] [--workers N] \
                 [--kill-after N] [--fault-after N] [--scratch DIR] [--daemon PATH] \
                 [--ledger PATH] [--no-verify]"
            );
            std::process::exit(2);
        }
    };
    let (stress_config, ledger_path) = config;
    let report = match stress::run(&stress_config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stress: FAILED: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &ledger_path {
        if let Err(e) = std::fs::write(path, &report.ledger) {
            eprintln!("stress: write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "jobs={} completed={} cancelled={} restarts={} events_seen={} verified={}",
        report.jobs,
        report.completed,
        report.cancelled,
        report.restarts,
        report.events_seen,
        stress_config.verify,
    );
    println!("ledger_digest={:016x}", report.ledger_digest);
}

type Parsed = (StressConfig, Option<PathBuf>);

fn parse(flags: &mut cli::BenchFlags) -> Result<Parsed, String> {
    let daemon_bin = match flags.take_path("--daemon")? {
        Some(path) => path,
        // Default: the consim-serve binary built alongside this one.
        None => std::env::current_exe()
            .map_err(|e| format!("locate current executable: {e}"))?
            .with_file_name("consim-serve"),
    };
    let scratch = match flags.take_path("--scratch")? {
        Some(dir) => dir,
        None => std::env::temp_dir().join(format!("consim-stress-{}", std::process::id())),
    };
    let mut config = StressConfig {
        seed: flags.take_u64("--seed")?.unwrap_or(1),
        jobs: usize::try_from(flags.take_u64("--jobs")?.unwrap_or(200))
            .map_err(|_| "--jobs out of range")?,
        clients: usize::try_from(flags.take_u64("--clients")?.unwrap_or(4))
            .map_err(|_| "--clients out of range")?,
        workers: usize::try_from(flags.take_u64("--workers")?.unwrap_or(2))
            .map_err(|_| "--workers out of range")?,
        kill_after: None,
        fault_after: flags.take_u64("--fault-after")?,
        scratch,
        daemon_bin,
        verify: true,
    };
    if let Some(kill) = flags.take_u64("--kill-after")? {
        config.kill_after = Some(usize::try_from(kill).map_err(|_| "--kill-after out of range")?);
    }
    let ledger = flags.take_path("--ledger")?;
    if let Some(pos) = flags.rest.iter().position(|a| a == "--no-verify") {
        flags.rest.remove(pos);
        config.verify = false;
    }
    if config.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if let Some(stray) = flags.rest.first() {
        return Err(format!("unrecognized argument {stray:?}"));
    }
    Ok((config, ledger))
}
