//! The wire protocol: length-prefixed, versioned, hand-rolled binary
//! frames in the same zero-dependency style as the `consim-snap`
//! container format.
//!
//! A connection opens with a fixed 8-byte hello from each side (magic
//! `CSRV` + little-endian protocol version); after that, every message in
//! either direction is one *frame*: a `u32` little-endian payload length
//! followed by that many payload bytes. The first payload byte is a
//! message tag; the rest is the tag-specific body, encoded little-endian
//! with explicit length prefixes on every variable-size field.
//!
//! Robustness contract (mirrored from the snap corruption battery): any
//! malformed input — truncated frame, oversized length prefix, unknown
//! tag, trailing bytes, mid-frame disconnect — decodes to a typed
//! [`ServeError`], never a panic. The daemon answers a malformed request
//! with [`Response::Error`] and closes that connection; other connections
//! are unaffected.

use consim_types::SimError;
use std::fmt;
use std::io::{Read, Write};

/// Handshake magic: "CSRV".
pub const MAGIC: [u8; 4] = *b"CSRV";

/// Protocol version. Bump on any frame-layout change; mismatched peers
/// are refused at handshake, before any frame is interpreted.
pub const VERSION: u32 = 1;

/// Upper bound on one frame's payload. Large enough for any realistic
/// configuration or outcome record, small enough that a corrupt or
/// hostile length prefix cannot make the daemon allocate gigabytes.
pub const MAX_FRAME: u32 = 8 * 1024 * 1024;

/// Everything that can go wrong speaking the protocol. Typed, never a
/// panic — the connection handler and the client both match on these.
#[derive(Debug)]
pub enum ServeError {
    /// The peer closed the connection cleanly between frames.
    Disconnected,
    /// The stream ended mid-frame (or mid-hello): bytes were promised by
    /// a length prefix and never arrived.
    Truncated(String),
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The length the prefix claimed.
        len: u32,
    },
    /// The first payload byte named no known message.
    UnknownTag(u8),
    /// The payload was structurally invalid (field overrun, bad UTF-8,
    /// trailing bytes, bad enum code).
    Malformed(String),
    /// The handshake did not start with [`MAGIC`] — not a consim-serve
    /// peer at all.
    BadMagic,
    /// The peer speaks a different protocol version.
    BadVersion {
        /// The version the peer announced.
        got: u32,
    },
    /// An I/O failure other than end-of-stream.
    Io(String),
    /// A simulation-layer error (config decode, journal, engine).
    Sim(SimError),
    /// The server answered with [`Response::Error`].
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Disconnected => write!(f, "peer disconnected"),
            ServeError::Truncated(what) => write!(f, "stream truncated mid-{what}"),
            ServeError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte bound")
            }
            ServeError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            ServeError::Malformed(why) => write!(f, "malformed frame: {why}"),
            ServeError::BadMagic => write!(f, "handshake magic mismatch (not consim-serve)"),
            ServeError::BadVersion { got } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, this side v{VERSION}"
                )
            }
            ServeError::Io(why) => write!(f, "i/o error: {why}"),
            ServeError::Sim(e) => write!(f, "{e}"),
            ServeError::Remote(why) => write!(f, "server error: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

/// Maps a raw I/O failure while reading `what` into the taxonomy:
/// end-of-stream inside a structure is [`ServeError::Truncated`],
/// anything else is [`ServeError::Io`].
fn read_err(what: &str, e: std::io::Error) -> ServeError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ServeError::Truncated(what.to_string())
    } else {
        ServeError::Io(format!("reading {what}: {e}"))
    }
}

/// Writes one side's hello (magic + version).
///
/// # Errors
///
/// Returns [`ServeError::Io`] on write failure.
pub fn write_hello(w: &mut impl Write) -> Result<(), ServeError> {
    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..].copy_from_slice(&VERSION.to_le_bytes());
    w.write_all(&hello)
        .map_err(|e| ServeError::Io(format!("writing hello: {e}")))
}

/// Reads and validates the peer's hello.
///
/// # Errors
///
/// [`ServeError::BadMagic`] / [`ServeError::BadVersion`] on a
/// non-matching peer, [`ServeError::Disconnected`] if the peer closed
/// before sending anything, [`ServeError::Truncated`] mid-hello.
pub fn read_hello(r: &mut impl Read) -> Result<(), ServeError> {
    let mut hello = [0u8; 8];
    read_exact_or_disconnect(r, &mut hello, "hello")?;
    if hello[..4] != MAGIC {
        return Err(ServeError::BadMagic);
    }
    let got = u32::from_le_bytes(hello[4..].try_into().expect("4 bytes"));
    if got != VERSION {
        return Err(ServeError::BadVersion { got });
    }
    Ok(())
}

/// Like `read_exact`, but distinguishes "closed before the first byte"
/// ([`ServeError::Disconnected`]) from "closed partway through"
/// ([`ServeError::Truncated`]).
fn read_exact_or_disconnect(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &str,
) -> Result<(), ServeError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(ServeError::Disconnected),
            Ok(0) => return Err(ServeError::Truncated(what.to_string())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(read_err(what, e)),
        }
    }
    Ok(())
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`ServeError::Oversized`] if the payload exceeds [`MAX_FRAME`] (the
/// sender's bug — refused before any bytes hit the wire),
/// [`ServeError::Io`] on write failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME as usize {
        return Err(ServeError::Oversized {
            len: payload.len() as u32,
        });
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
        .map_err(|e| ServeError::Io(format!("writing frame: {e}")))
}

/// Reads one frame's payload.
///
/// # Errors
///
/// [`ServeError::Disconnected`] on a clean close between frames,
/// [`ServeError::Truncated`] on a mid-frame close,
/// [`ServeError::Oversized`] on a length prefix beyond [`MAX_FRAME`],
/// [`ServeError::Malformed`] on an empty frame (every message has at
/// least a tag byte).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let mut len = [0u8; 4];
    read_exact_or_disconnect(r, &mut len, "length prefix")?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(ServeError::Oversized { len });
    }
    if len == 0 {
        return Err(ServeError::Malformed("empty frame".into()));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_disconnect(r, &mut payload, "frame payload") {
        // A close at the payload boundary is still mid-frame: the length
        // prefix promised bytes that never came.
        Err(ServeError::Disconnected) => Err(ServeError::Truncated("frame payload".into())),
        other => other,
    }?;
    Ok(payload)
}

/// Where a job stands, as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Queued or executing (the protocol does not distinguish; both
    /// resolve without client action).
    Pending,
    /// Finished; an outcome record exists.
    Completed,
    /// Cancelled before completion.
    Cancelled,
    /// Failed with a simulation-layer error.
    Failed,
    /// Stranded by an early wind-down; will re-run after a restart.
    Abandoned,
    /// No job with that digest is known to this daemon.
    Unknown,
}

impl JobState {
    fn code(self) -> u8 {
        match self {
            JobState::Pending => 0,
            JobState::Completed => 1,
            JobState::Cancelled => 2,
            JobState::Failed => 3,
            JobState::Abandoned => 4,
            JobState::Unknown => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, ServeError> {
        Ok(match code {
            0 => JobState::Pending,
            1 => JobState::Completed,
            2 => JobState::Cancelled,
            3 => JobState::Failed,
            4 => JobState::Abandoned,
            5 => JobState::Unknown,
            other => return Err(ServeError::Malformed(format!("bad job state code {other}"))),
        })
    }
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job: experiment-cell tag plus a serialized configuration
    /// ([`consim::persist::config_to_bytes`]). Identified — and
    /// deduplicated — by the configuration's content digest.
    Submit {
        /// Experiment-cell tag (aggregation key, echoed in results).
        cell: u64,
        /// Serialized `SimulationConfig` record.
        config: Vec<u8>,
    },
    /// Ask where the job with this digest stands.
    Status {
        /// The configuration content digest identifying the job.
        digest: u64,
    },
    /// Cancel the job with this digest (no-op if already terminal).
    Cancel {
        /// The configuration content digest identifying the job.
        digest: u64,
    },
    /// Stream the job's trace events ([`Response::Event`]) on this
    /// connection until it finishes ([`Response::Done`]).
    Subscribe {
        /// The configuration content digest identifying the job.
        digest: u64,
    },
    /// Stop admitting submissions; everything queued still runs.
    Drain,
    /// Stop now: strand the backlog (journaled submissions survive to the
    /// next incarnation), finish in-flight slices, exit.
    Shutdown,
    /// Liveness probe.
    Ping,
}

const REQ_SUBMIT: u8 = 1;
const REQ_STATUS: u8 = 2;
const REQ_CANCEL: u8 = 3;
const REQ_SUBSCRIBE: u8 = 4;
const REQ_DRAIN: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_PING: u8 = 7;

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A submission was durably accepted (its journal record is on disk)
    /// or recognized as already known.
    Submitted {
        /// Content digest the daemon computed from the submitted config.
        digest: u64,
        /// Submission index in this daemon incarnation.
        index: u64,
        /// Whether a job with this digest was already registered.
        duplicate: bool,
    },
    /// Answer to [`Request::Status`].
    JobStatus {
        /// Where the job stands.
        state: JobState,
        /// The serialized outcome record, when `state` is `Completed`.
        outcome: Option<Vec<u8>>,
        /// The failure message, when `state` is `Failed`.
        message: Option<String>,
    },
    /// One streamed trace event (a `TraceEvent` JSON line).
    Event {
        /// The event as one line of JSON.
        json: String,
    },
    /// Terminal frame of a subscription: the job reached `state`.
    Done {
        /// The terminal state.
        state: JobState,
        /// The serialized outcome record, when `state` is `Completed`.
        outcome: Option<Vec<u8>>,
    },
    /// Generic acknowledgement.
    Ack,
    /// Answer to [`Request::Ping`].
    Pong,
    /// The request could not be served; the reason, human-readable.
    Error {
        /// What went wrong.
        message: String,
    },
}

const RESP_SUBMITTED: u8 = 1;
const RESP_JOB_STATUS: u8 = 2;
const RESP_EVENT: u8 = 3;
const RESP_DONE: u8 = 4;
const RESP_ACK: u8 = 5;
const RESP_PONG: u8 = 6;
const RESP_ERROR: u8 = 7;

/// Bounds-checked little-endian payload reader.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ServeError> {
        if self.buf.len() - self.pos < n {
            return Err(ServeError::Malformed(format!(
                "{what}: wanted {n} bytes, {} left",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ServeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>, ServeError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    fn string(&mut self, what: &str) -> Result<String, ServeError> {
        String::from_utf8(self.bytes(what)?)
            .map_err(|_| ServeError::Malformed(format!("{what}: invalid utf-8")))
    }

    fn opt_bytes(&mut self, what: &str) -> Result<Option<Vec<u8>>, ServeError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes(what)?)),
            other => Err(ServeError::Malformed(format!(
                "{what}: bad option flag {other}"
            ))),
        }
    }

    fn opt_string(&mut self, what: &str) -> Result<Option<String>, ServeError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.string(what)?)),
            other => Err(ServeError::Malformed(format!(
                "{what}: bad option flag {other}"
            ))),
        }
    }

    /// Trailing bytes after a complete message are corruption, not slack.
    fn finish(self) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_opt_bytes(out: &mut Vec<u8>, bytes: Option<&[u8]>) {
    match bytes {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bytes(out, b);
        }
    }
}

impl Request {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Submit { cell, config } => {
                out.push(REQ_SUBMIT);
                out.extend_from_slice(&cell.to_le_bytes());
                put_bytes(&mut out, config);
            }
            Request::Status { digest } => {
                out.push(REQ_STATUS);
                out.extend_from_slice(&digest.to_le_bytes());
            }
            Request::Cancel { digest } => {
                out.push(REQ_CANCEL);
                out.extend_from_slice(&digest.to_le_bytes());
            }
            Request::Subscribe { digest } => {
                out.push(REQ_SUBSCRIBE);
                out.extend_from_slice(&digest.to_le_bytes());
            }
            Request::Drain => out.push(REQ_DRAIN),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Ping => out.push(REQ_PING),
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTag`] / [`ServeError::Malformed`] on anything
    /// that is not exactly one well-formed request.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut cur = Cur::new(payload);
        let tag = cur.u8("request tag")?;
        let req = match tag {
            REQ_SUBMIT => Request::Submit {
                cell: cur.u64("submit cell")?,
                config: cur.bytes("submit config")?,
            },
            REQ_STATUS => Request::Status {
                digest: cur.u64("status digest")?,
            },
            REQ_CANCEL => Request::Cancel {
                digest: cur.u64("cancel digest")?,
            },
            REQ_SUBSCRIBE => Request::Subscribe {
                digest: cur.u64("subscribe digest")?,
            },
            REQ_DRAIN => Request::Drain,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_PING => Request::Ping,
            other => return Err(ServeError::UnknownTag(other)),
        };
        cur.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Submitted {
                digest,
                index,
                duplicate,
            } => {
                out.push(RESP_SUBMITTED);
                out.extend_from_slice(&digest.to_le_bytes());
                out.extend_from_slice(&index.to_le_bytes());
                out.push(u8::from(*duplicate));
            }
            Response::JobStatus {
                state,
                outcome,
                message,
            } => {
                out.push(RESP_JOB_STATUS);
                out.push(state.code());
                put_opt_bytes(&mut out, outcome.as_deref());
                match message {
                    None => out.push(0),
                    Some(m) => {
                        out.push(1);
                        put_bytes(&mut out, m.as_bytes());
                    }
                }
            }
            Response::Event { json } => {
                out.push(RESP_EVENT);
                put_bytes(&mut out, json.as_bytes());
            }
            Response::Done { state, outcome } => {
                out.push(RESP_DONE);
                out.push(state.code());
                put_opt_bytes(&mut out, outcome.as_deref());
            }
            Response::Ack => out.push(RESP_ACK),
            Response::Pong => out.push(RESP_PONG),
            Response::Error { message } => {
                out.push(RESP_ERROR);
                put_bytes(&mut out, message.as_bytes());
            }
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTag`] / [`ServeError::Malformed`] on anything
    /// that is not exactly one well-formed response.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut cur = Cur::new(payload);
        let tag = cur.u8("response tag")?;
        let resp = match tag {
            RESP_SUBMITTED => Response::Submitted {
                digest: cur.u64("submitted digest")?,
                index: cur.u64("submitted index")?,
                duplicate: match cur.u8("submitted duplicate flag")? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(ServeError::Malformed(format!("bad duplicate flag {other}")))
                    }
                },
            },
            RESP_JOB_STATUS => Response::JobStatus {
                state: JobState::from_code(cur.u8("status state")?)?,
                outcome: cur.opt_bytes("status outcome")?,
                message: cur.opt_string("status message")?,
            },
            RESP_EVENT => Response::Event {
                json: cur.string("event json")?,
            },
            RESP_DONE => Response::Done {
                state: JobState::from_code(cur.u8("done state")?)?,
                outcome: cur.opt_bytes("done outcome")?,
            },
            RESP_ACK => Response::Ack,
            RESP_PONG => Response::Pong,
            RESP_ERROR => Response::Error {
                message: cur.string("error message")?,
            },
            other => return Err(ServeError::UnknownTag(other)),
        };
        cur.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Submit {
                cell: 42,
                config: vec![1, 2, 3, 4, 5],
            },
            Request::Status { digest: u64::MAX },
            Request::Cancel { digest: 7 },
            Request::Subscribe { digest: 0 },
            Request::Drain,
            Request::Shutdown,
            Request::Ping,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Submitted {
                digest: 9,
                index: 3,
                duplicate: true,
            },
            Response::JobStatus {
                state: JobState::Completed,
                outcome: Some(vec![0xde, 0xad]),
                message: None,
            },
            Response::JobStatus {
                state: JobState::Failed,
                outcome: None,
                message: Some("boom".into()),
            },
            Response::Event {
                json: "{\"event\":\"epoch\"}".into(),
            },
            Response::Done {
                state: JobState::Cancelled,
                outcome: None,
            },
            Response::Ack,
            Response::Pong,
            Response::Error {
                message: "unknown job".into(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for req in requests() {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        for resp in responses() {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error() {
        // Mirrors the snap battery: chop each message at every possible
        // length and demand a typed error, never a panic or a bogus decode.
        for req in requests() {
            let full = req.encode();
            for cut in 0..full.len() {
                match Request::decode(&full[..cut]) {
                    Err(ServeError::Malformed(_)) | Err(ServeError::UnknownTag(_)) => {}
                    Ok(other) => {
                        // A prefix that happens to be a complete shorter
                        // message is impossible: decode demands exact
                        // consumption, so any Ok here is a bug.
                        panic!("cut {cut} of {req:?} decoded as {other:?}")
                    }
                    Err(e) => panic!("cut {cut} of {req:?}: unexpected error class {e}"),
                }
            }
        }
        for resp in responses() {
            let full = resp.encode();
            for cut in 0..full.len() {
                assert!(
                    Response::decode(&full[..cut]).is_err(),
                    "cut {cut} of {resp:?} must not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_refused() {
        for req in requests() {
            let mut bytes = req.encode();
            bytes.push(0);
            assert!(
                matches!(Request::decode(&bytes), Err(ServeError::Malformed(_))),
                "{req:?} with a trailing byte must be refused"
            );
        }
    }

    #[test]
    fn unknown_tags_are_refused() {
        assert!(matches!(
            Request::decode(&[0xee]),
            Err(ServeError::UnknownTag(0xee))
        ));
        assert!(matches!(
            Response::decode(&[0x7f, 0, 0]),
            Err(ServeError::UnknownTag(0x7f))
        ));
    }

    #[test]
    fn frame_io_round_trips_and_bounds_lengths() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, &[9]).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(read_frame(&mut r).unwrap(), vec![9]);
        assert!(matches!(read_frame(&mut r), Err(ServeError::Disconnected)));

        // Oversized prefix: refused before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ServeError::Oversized { .. })
        ));

        // Empty frame: every message has at least a tag.
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut zero.as_slice()),
            Err(ServeError::Malformed(_))
        ));

        // Mid-frame disconnects: inside the prefix and inside the payload.
        let mut partial = Vec::new();
        write_frame(&mut partial, &[1, 2, 3, 4]).unwrap();
        for cut in 1..partial.len() {
            assert!(
                matches!(
                    read_frame(&mut &partial[..cut]),
                    Err(ServeError::Truncated(_))
                ),
                "cut at {cut} must be a truncation"
            );
        }
    }

    #[test]
    fn hello_rejects_wrong_magic_and_version() {
        let mut good = Vec::new();
        write_hello(&mut good).unwrap();
        read_hello(&mut good.as_slice()).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_hello(&mut bad_magic.as_slice()),
            Err(ServeError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xff;
        assert!(matches!(
            read_hello(&mut bad_version.as_slice()),
            Err(ServeError::BadVersion { .. })
        ));

        assert!(matches!(
            read_hello(&mut &good[..5]),
            Err(ServeError::Truncated(_))
        ));
        assert!(matches!(
            read_hello(&mut &good[..0]),
            Err(ServeError::Disconnected)
        ));
    }
}
