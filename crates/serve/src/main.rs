//! `consim-serve` — the consolidation-as-a-service daemon.
//!
//! ```text
//! consim-serve --journal <dir> [--listen tcp:HOST:PORT | --listen unix:PATH]
//!              [--workers N] [--time-slice N] [--checkpoint-every N]
//!              [--epoch-cycles N] [--port-file PATH]
//! ```
//!
//! Prints `listening on <endpoint>` (and, with `--port-file`, atomically
//! writes the endpoint string there) once ready. Runs until a client
//! sends `Shutdown` (exit 0) or the `CONSIM_FAULT=jobs:K` injector trips
//! (exit 17 — the simulated-crash exit, used by the stress driver and CI
//! to distinguish an injected fault from a real failure).

use consim_bench::cli;
use consim_serve::daemon::{Daemon, DaemonConfig, DaemonOutcome};
use consim_serve::net::EndpointSpec;
use std::path::{Path, PathBuf};

/// Exit status for a tripped fault injector: deliberately distinct from
/// success and from panic-style failures so supervisors can tell a
/// simulated crash from a real one.
const FAULT_EXIT: i32 = 17;

fn main() {
    let mut flags = cli::BenchFlags::from_env("consim-serve");
    let config = match parse(&mut flags) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("consim-serve: {msg}");
            eprintln!(
                "usage: consim-serve --journal <dir> [--listen tcp:HOST:PORT|unix:PATH] \
                 [--workers N] [--time-slice N] [--checkpoint-every N] \
                 [--epoch-cycles N] [--port-file PATH]"
            );
            std::process::exit(2);
        }
    };
    let (daemon_config, port_file) = config;
    let daemon = match Daemon::start(daemon_config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("consim-serve: {e}");
            std::process::exit(1);
        }
    };
    let endpoint = daemon.endpoint().clone();
    println!("listening on {endpoint}");
    if let Some(path) = port_file {
        if let Err(e) = write_port_file(&path, &endpoint.to_string()) {
            eprintln!("consim-serve: write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    match daemon.wait() {
        DaemonOutcome::Shutdown => {}
        DaemonOutcome::Faulted => {
            eprintln!("consim-serve: fault injector tripped; exiting as crashed");
            std::process::exit(FAULT_EXIT);
        }
    }
}

type Parsed = (DaemonConfig, Option<PathBuf>);

fn parse(flags: &mut cli::BenchFlags) -> Result<Parsed, String> {
    let journal = flags
        .take_path("--journal")?
        .ok_or("--journal <dir> is required")?;
    let mut config = DaemonConfig::new(journal);
    if let Some(listen) = flags.take_path("--listen")? {
        let listen = listen.to_string_lossy().into_owned();
        config.endpoint = if let Some(path) = listen.strip_prefix("unix:") {
            EndpointSpec::Unix(PathBuf::from(path))
        } else if let Some(addr) = listen.strip_prefix("tcp:") {
            EndpointSpec::Tcp(addr.to_string())
        } else {
            return Err(format!("--listen {listen:?} must start with tcp: or unix:"));
        };
    }
    if let Some(workers) = flags.take_u64("--workers")? {
        config.workers = usize::try_from(workers).map_err(|_| "--workers out of range")?;
    }
    if let Some(slice) = flags.take_u64("--time-slice")? {
        config.time_slice = Some(slice);
    }
    if let Some(every) = flags.take_u64("--epoch-cycles")? {
        config.epoch_cycles = every;
    }
    let port_file = flags.take_path("--port-file")?;
    // --checkpoint-every rides in on the shared flag parser.
    if let Some(every) = flags.checkpoint_every {
        config.checkpoint_every = Some(every);
    }
    config.fault_after = cli::fault_from_env_with("jobs")?;
    if let Some(stray) = flags.rest.first() {
        return Err(format!("unrecognized argument {stray:?}"));
    }
    Ok((config, port_file))
}

/// Write-then-rename so a polling client never reads a half-written
/// endpoint string.
fn write_port_file(path: &Path, endpoint: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, endpoint)?;
    std::fs::rename(&tmp, path)
}
