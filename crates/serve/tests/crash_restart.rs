//! Crash/restart determinism: a stress run whose daemon is SIGKILLed at
//! a seeded point and restarted over the same journal directory must
//! finish with a ledger byte-identical to an uninterrupted run — at
//! every worker count. The ledger is also invariant across worker
//! counts, because each job's outcome is a pure function of its
//! configuration.

use consim_serve::stress::{self, StressConfig, StressReport};
use std::path::PathBuf;

const SEED: u64 = 5;
const JOBS: usize = 18;

fn stress_once(tag: &str, workers: usize, kill_after: Option<usize>, verify: bool) -> StressReport {
    let scratch =
        std::env::temp_dir().join(format!("consim-crash-restart-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let report = stress::run(&StressConfig {
        seed: SEED,
        jobs: JOBS,
        clients: 3,
        workers,
        kill_after,
        fault_after: None,
        scratch: scratch.clone(),
        daemon_bin: PathBuf::from(env!("CARGO_BIN_EXE_consim-serve")),
        verify,
    })
    .expect("stress run failed");
    std::fs::remove_dir_all(&scratch).ok();
    report
}

#[test]
fn killed_and_restarted_ledger_is_byte_identical_across_worker_counts() {
    let mut ledgers = Vec::new();
    for &workers in &[1usize, 2, 4] {
        // Serial-reference verification once, at the cheapest width; the
        // other widths are pinned to the same ledger bytes anyway.
        let verify = workers == 1;
        let baseline = stress_once(&format!("base-w{workers}"), workers, None, verify);
        let killed = stress_once(&format!("kill-w{workers}"), workers, Some(JOBS / 3), false);
        assert!(
            killed.restarts >= 1,
            "the kill run must actually crash the daemon (workers={workers})"
        );
        assert_eq!(baseline.jobs, JOBS);
        assert_eq!(
            baseline.ledger, killed.ledger,
            "crash+restart changed the ledger at workers={workers}"
        );
        assert_eq!(baseline.ledger_digest, killed.ledger_digest);
        ledgers.push(baseline.ledger);
    }
    assert!(
        ledgers.windows(2).all(|w| w[0] == w[1]),
        "ledger must not depend on worker count"
    );
}
