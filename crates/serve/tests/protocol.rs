//! Wire-protocol robustness against a *live* daemon: the corruption
//! battery from `consim-snap`, transplanted to the socket. Every abusive
//! connection must yield a typed error (or a clean drop) on that
//! connection only — the daemon itself keeps serving.

use consim_serve::daemon::{Daemon, DaemonConfig};
use consim_serve::net::Endpoint;
use consim_serve::proto::{read_frame, read_hello, write_frame, write_hello, Response, MAGIC};
use consim_serve::{Client, JobState, StreamFrame};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// Temp dir removed on drop (even on assertion failure).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("consim-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn start_daemon(tag: &str) -> (Daemon, ScratchDir) {
    let scratch = ScratchDir::new(tag);
    let mut config = DaemonConfig::new(scratch.0.join("journal"));
    config.workers = 1;
    let daemon = Daemon::start(config).unwrap();
    (daemon, scratch)
}

fn raw_tcp(endpoint: &Endpoint) -> TcpStream {
    let Endpoint::Tcp(addr) = endpoint else {
        panic!("test daemon listens on TCP");
    };
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

fn test_config(seed: u64) -> consim::engine::SimulationConfig {
    let profile = consim_workload::WorkloadProfileBuilder::new("proto-test")
        .footprint_blocks(1_500)
        .build()
        .unwrap();
    let mut builder = consim::engine::SimulationConfig::builder();
    builder.workload(profile).refs_per_vm(400).seed(seed);
    builder.build().unwrap()
}

/// The daemon must keep answering a well-behaved client after each kind
/// of wire abuse; each abusive connection dies alone.
#[test]
fn daemon_survives_the_corruption_battery() {
    let (daemon, _scratch) = start_daemon("battery");
    let endpoint = daemon.endpoint().clone();

    // 1. Wrong magic: dropped before any frame is interpreted.
    {
        let mut s = raw_tcp(&endpoint);
        s.write_all(b"BOGUS\0\0\0").unwrap();
        let mut buf = [0u8; 16];
        // Daemon hangs up without a hello of its own.
        assert_eq!(
            s.read(&mut buf).unwrap_or(0),
            0,
            "bad magic must be dropped"
        );
    }

    // 2. Wrong version: same quiet drop.
    {
        let mut s = raw_tcp(&endpoint);
        let mut hello = Vec::from(MAGIC);
        hello.extend_from_slice(&99u32.to_le_bytes());
        s.write_all(&hello).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(
            s.read(&mut buf).unwrap_or(0),
            0,
            "bad version must be dropped"
        );
    }

    // 3. Oversized length prefix: typed error response, then close.
    {
        let mut s = raw_tcp(&endpoint);
        write_hello(&mut s).unwrap();
        read_hello(&mut s).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let reply = read_frame(&mut s).unwrap();
        match Response::decode(&reply).unwrap() {
            Response::Error { message } => {
                assert!(
                    message.contains("frame"),
                    "names the framing problem: {message}"
                );
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    // 4. Truncated frame: length promises more than the peer sends.
    {
        let mut s = raw_tcp(&endpoint);
        write_hello(&mut s).unwrap();
        read_hello(&mut s).unwrap();
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
        // Mid-frame disconnect.
        drop(s);
    }

    // 5. Unknown message tag inside a well-formed frame.
    {
        let mut s = raw_tcp(&endpoint);
        write_hello(&mut s).unwrap();
        read_hello(&mut s).unwrap();
        write_frame(&mut s, &[0xEE, 1, 2, 3]).unwrap();
        let reply = read_frame(&mut s).unwrap();
        match Response::decode(&reply).unwrap() {
            Response::Error { message } => {
                assert!(message.contains("tag"), "names the unknown tag: {message}");
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    // 6. Zero-length frame: refused as malformed.
    {
        let mut s = raw_tcp(&endpoint);
        write_hello(&mut s).unwrap();
        read_hello(&mut s).unwrap();
        s.write_all(&0u32.to_le_bytes()).unwrap();
        let reply = read_frame(&mut s).unwrap();
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Error { .. }
        ));
    }

    // After all of that: the daemon still speaks to a polite client.
    let mut client = Client::connect(&endpoint).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    daemon.wait();
}

/// The full request vocabulary against one live daemon: submit runs to
/// completion, status reports it, subscribe streams a terminal frame,
/// cancel of an unknown digest is a remote error, drain refuses new
/// submissions, duplicate submissions dedupe by digest.
#[test]
fn graceful_session_covers_every_request() {
    let (daemon, _scratch) = start_daemon("graceful");
    let endpoint = daemon.endpoint().clone();
    let mut client = Client::connect(&endpoint).unwrap();
    client.ping().unwrap();

    let config = test_config(11);
    let ack = client.submit(0, &config).unwrap();
    assert!(!ack.duplicate);
    let again = client.submit(0, &config).unwrap();
    assert!(again.duplicate, "same config must dedupe by digest");
    assert_eq!(again.digest, ack.digest);

    // Unknown digest: typed remote errors, connection stays usable.
    assert!(client.cancel(ack.digest ^ 1).is_err());
    client.ping().unwrap();
    let unknown = client.status(ack.digest ^ 1).unwrap();
    assert_eq!(unknown.state, JobState::Unknown);

    // Poll to completion.
    let outcome_bytes = loop {
        let reply = client.status(ack.digest).unwrap();
        match reply.state {
            JobState::Completed => break reply.outcome_bytes.unwrap(),
            JobState::Pending => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("job should complete, got {other:?}"),
        }
    };
    assert!(!outcome_bytes.is_empty());

    // Subscribing to a finished job yields its terminal frame at once.
    let mut sub = Client::connect(&endpoint).unwrap();
    sub.subscribe(ack.digest).unwrap();
    match sub.next_stream_frame().unwrap() {
        StreamFrame::Done { state, outcome } => {
            assert_eq!(state, JobState::Completed);
            assert_eq!(outcome.unwrap(), outcome_bytes, "stream and status agree");
        }
        StreamFrame::Event(_) => panic!("terminal subscribe must skip straight to Done"),
    }

    // Drain: admission stops, the daemon still answers.
    client.drain().unwrap();
    assert!(client.submit(1, &test_config(12)).is_err());
    client.ping().unwrap();
    client.shutdown().unwrap();
    daemon.wait();
}

/// A subscriber attached while the job is still running sees live epoch
/// events before the terminal frame.
#[test]
fn subscribe_streams_live_epoch_events() {
    let scratch = ScratchDir::new("stream");
    let mut config = DaemonConfig::new(scratch.0.join("journal"));
    config.workers = 1;
    // Small epochs so even a short job emits several snapshots.
    config.epoch_cycles = 2_000;
    let daemon = Daemon::start(config).unwrap();
    let endpoint = daemon.endpoint().clone();

    let mut client = Client::connect(&endpoint).unwrap();
    let ack = client.submit(0, &test_config(23)).unwrap();
    client.subscribe(ack.digest).unwrap();
    let mut events = 0usize;
    let done = loop {
        match client.next_stream_frame().unwrap() {
            StreamFrame::Event(json) => {
                assert!(json.starts_with('{'), "events are JSON objects: {json}");
                events += 1;
            }
            StreamFrame::Done { state, .. } => break state,
        }
    };
    assert_eq!(done, JobState::Completed);
    assert!(events > 0, "a live subscriber must see epoch snapshots");

    let mut client = Client::connect(&endpoint).unwrap();
    client.shutdown().unwrap();
    daemon.wait();
}

/// Cancelling a pending job reaches a terminal state that a subscriber
/// also observes.
#[test]
fn cancel_terminates_and_notifies_subscribers() {
    let (daemon, _scratch) = start_daemon("cancel");
    let endpoint = daemon.endpoint().clone();
    let mut client = Client::connect(&endpoint).unwrap();
    // A queue of jobs keeps the last one pending long enough to cancel.
    let mut digests = Vec::new();
    for seed in 30..34 {
        digests.push(client.submit(0, &test_config(seed)).unwrap().digest);
    }
    let target = *digests.last().unwrap();
    let mut sub = Client::connect(&endpoint).unwrap();
    sub.subscribe(target).unwrap();
    client.cancel(target).unwrap();
    let state = loop {
        match sub.next_stream_frame().unwrap() {
            StreamFrame::Event(_) => {}
            StreamFrame::Done { state, .. } => break state,
        }
    };
    // The cancel races job start; either way the subscriber got a
    // terminal frame and the daemon agrees with it.
    assert!(
        state == JobState::Cancelled || state == JobState::Completed,
        "unexpected terminal state {state:?}"
    );
    let reply = client.status(target).unwrap();
    assert_eq!(reply.state, state);
    client.shutdown().unwrap();
    daemon.wait();
}

/// `Submit` is refused with a typed error when the daemon is draining —
/// and the spec record is not left behind to resurrect on restart.
#[test]
fn drained_daemon_refuses_submissions_without_journaling_them() {
    let scratch = ScratchDir::new("drain-refuse");
    let journal_dir = scratch.0.join("journal");
    let daemon = Daemon::start(DaemonConfig::new(&journal_dir)).unwrap();
    let endpoint = daemon.endpoint().clone();
    let mut client = Client::connect(&endpoint).unwrap();
    client.drain().unwrap();
    let err = client.submit(0, &test_config(40)).unwrap_err();
    assert!(
        err.to_string().contains("drain"),
        "names the refusal: {err}"
    );
    let specs: Vec<_> = std::fs::read_dir(&journal_dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "spec"))
        .collect();
    assert!(
        specs.is_empty(),
        "refused submissions must not be journaled"
    );
    client.ping().unwrap();
    client.shutdown().unwrap();
    daemon.wait();
}
