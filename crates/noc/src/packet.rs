//! Network packets.

use consim_types::NodeId;
use std::fmt;

/// Link width in bytes; a 64 B cache line plus header fits in 5 flits.
pub const FLIT_BYTES: usize = 16;

/// Flits in a control packet (requests, acknowledgements, invalidations).
pub const CONTROL_FLITS: usize = 1;

/// Flits in a data packet (cache-line transfers: 64 B payload + header).
pub const DATA_FLITS: usize = 5;

/// What a packet carries; determines its length in flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PacketClass {
    /// A single-flit control message.
    Control,
    /// A cache-line-bearing data message.
    Data,
}

impl PacketClass {
    /// Packet length in flits.
    pub const fn flits(self) -> usize {
        match self {
            PacketClass::Control => CONTROL_FLITS,
            PacketClass::Data => DATA_FLITS,
        }
    }
}

/// A point-to-point message on the mesh.
///
/// # Examples
///
/// ```
/// use consim_noc::packet::{Packet, PacketClass};
/// use consim_types::NodeId;
///
/// let req = Packet::control(NodeId::new(2), NodeId::new(9));
/// assert_eq!(req.flits(), 1);
/// let fill = Packet::data(NodeId::new(9), NodeId::new(2));
/// assert_eq!(fill.flits(), 5);
/// assert_eq!(fill.class, PacketClass::Data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload class.
    pub class: PacketClass,
}

impl Packet {
    /// Creates a control packet.
    pub const fn control(src: NodeId, dst: NodeId) -> Self {
        Self {
            src,
            dst,
            class: PacketClass::Control,
        }
    }

    /// Creates a data packet.
    pub const fn data(src: NodeId, dst: NodeId) -> Self {
        Self {
            src,
            dst,
            class: PacketClass::Data,
        }
    }

    /// Packet length in flits.
    pub const fn flits(&self) -> usize {
        self.class.flits()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self.class {
            PacketClass::Control => "ctrl",
            PacketClass::Data => "data",
        };
        write!(f, "{c} {}->{}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_counts() {
        assert_eq!(PacketClass::Control.flits(), 1);
        assert_eq!(PacketClass::Data.flits(), 5);
        // 5 flits of 16 B cover a 64 B line + 16 B header.
        const { assert!(DATA_FLITS * FLIT_BYTES >= 64 + FLIT_BYTES) };
    }

    #[test]
    fn constructors() {
        let p = Packet::control(NodeId::new(1), NodeId::new(2));
        assert_eq!(p.class, PacketClass::Control);
        let q = Packet::data(NodeId::new(1), NodeId::new(2));
        assert_eq!(q.flits(), DATA_FLITS);
    }

    #[test]
    fn display() {
        let p = Packet::data(NodeId::new(0), NodeId::new(3));
        assert_eq!(p.to_string(), "data node0->node3");
    }
}
