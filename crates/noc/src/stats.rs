//! Network statistics.

use crate::packet::{Packet, PacketClass};
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::cycles::LatencyAccumulator;
use consim_types::SimError;
use std::fmt;

/// Counters shared by both network models.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Packets injected (accepted for transport). The counter audit checks
    /// `injected == packets` at end of run: a gap means the model lost a
    /// packet between acceptance and delivery accounting.
    pub injected: u64,
    /// Packets delivered.
    pub packets: u64,
    /// Flits delivered.
    pub flits: u64,
    /// Control packets delivered.
    pub control_packets: u64,
    /// Data packets delivered.
    pub data_packets: u64,
    /// Sum of hop counts.
    pub total_hops: u64,
    /// End-to-end packet latencies.
    pub latency: LatencyAccumulator,
}

impl NocStats {
    /// Records one delivered packet.
    pub fn record(&mut self, packet: &Packet, hops: usize, latency: u64) {
        self.packets += 1;
        self.flits += packet.flits() as u64;
        match packet.class {
            PacketClass::Control => self.control_packets += 1,
            PacketClass::Data => self.data_packets += 1,
        }
        self.total_hops += hops as u64;
        self.latency.record(latency);
    }

    /// Mean end-to-end latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Mean hops per packet.
    pub fn mean_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.packets as f64
        }
    }
}

impl Snapshot for NocStats {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.injected);
        w.put_u64(self.packets);
        w.put_u64(self.flits);
        w.put_u64(self.control_packets);
        w.put_u64(self.data_packets);
        w.put_u64(self.total_hops);
        self.latency.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.injected = r.get_u64()?;
        self.packets = r.get_u64()?;
        self.flits = r.get_u64()?;
        self.control_packets = r.get_u64()?;
        self.data_packets = r.get_u64()?;
        self.total_hops = r.get_u64()?;
        self.latency.restore(r)
    }
}

impl fmt::Display for NocStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "packets={} (ctrl {}, data {}) flits={} mean hops={:.2} mean latency={:.2}cy",
            self.packets,
            self.control_packets,
            self.data_packets,
            self.flits,
            self.mean_hops(),
            self.mean_latency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::NodeId;

    #[test]
    fn record_accumulates() {
        let mut s = NocStats::default();
        s.record(&Packet::control(NodeId::new(0), NodeId::new(1)), 1, 4);
        s.record(&Packet::data(NodeId::new(0), NodeId::new(2)), 2, 12);
        assert_eq!(s.injected, 0, "record() only counts deliveries");
        assert_eq!(s.packets, 2);
        assert_eq!(s.control_packets, 1);
        assert_eq!(s.data_packets, 1);
        assert_eq!(s.flits, 6);
        assert_eq!(s.mean_hops(), 1.5);
        assert_eq!(s.mean_latency(), 8.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = NocStats::default();
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let mut s = NocStats::default();
        s.record(&Packet::control(NodeId::new(0), NodeId::new(1)), 1, 4);
        let text = s.to_string();
        assert!(text.contains("packets=1"));
        assert!(text.contains("latency"));
    }
}
