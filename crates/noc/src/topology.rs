//! Mesh topology, coordinates, and dimension-order (XY) routing.

use consim_types::{NodeId, SimError};
use std::fmt;

/// A direction out of a mesh router, or the local ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger x.
    East,
    /// Toward smaller x.
    West,
    /// Toward larger y.
    North,
    /// Toward smaller y.
    South,
    /// The attached endpoint (core / LLC bank / memory controller).
    Local,
}

impl Direction {
    /// All five port directions, `Local` last.
    pub const ALL: [Direction; 5] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
        Direction::Local,
    ];

    /// A stable index in `0..5` for array-indexed port state.
    pub const fn port_index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }

    /// The direction a flit arriving over this link enters the next router
    /// from (e.g. traveling East, it arrives at the West input).
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Local => Direction::Local,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A mesh coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: usize,
    /// Row, `0..height`.
    pub y: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A `width x height` 2-D mesh.
///
/// Node ids are assigned row-major: node `y * width + x` sits at `(x, y)`.
///
/// # Examples
///
/// ```
/// use consim_noc::topology::{Coord, Mesh};
/// use consim_types::NodeId;
///
/// let mesh = Mesh::new(4, 4)?;
/// assert_eq!(mesh.coord_of(NodeId::new(5)), Coord::new(1, 1));
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(15)), 6);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, SimError> {
        if width == 0 || height == 0 {
            return Err(SimError::invalid_config("mesh dimensions must be nonzero"));
        }
        Ok(Self { width, height })
    }

    /// Mesh width (columns).
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Total node count.
    pub const fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// The coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the mesh.
    pub fn coord_of(&self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes(), "node {node} outside mesh");
        Coord::new(node.index() % self.width, node.index() / self.width)
    }

    /// The node at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn node_at(&self, coord: Coord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coordinate {coord} outside mesh"
        );
        NodeId::new(coord.y * self.width + coord.x)
    }

    /// The neighbor of `node` in `dir`, if it exists (`Local` has none).
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord_of(node);
        let next = match dir {
            Direction::East if c.x + 1 < self.width => Coord::new(c.x + 1, c.y),
            Direction::West if c.x > 0 => Coord::new(c.x - 1, c.y),
            Direction::North if c.y + 1 < self.height => Coord::new(c.x, c.y + 1),
            Direction::South if c.y > 0 => Coord::new(c.x, c.y - 1),
            _ => return None,
        };
        Some(self.node_at(next))
    }

    /// The next output direction under XY (dimension-order) routing:
    /// x first, then y, then `Local` on arrival.
    pub fn route_xy(&self, at: NodeId, dst: NodeId) -> Direction {
        let a = self.coord_of(at);
        let d = self.coord_of(dst);
        if a.x < d.x {
            Direction::East
        } else if a.x > d.x {
            Direction::West
        } else if a.y < d.y {
            Direction::North
        } else if a.y > d.y {
            Direction::South
        } else {
            Direction::Local
        }
    }

    /// The full XY path from `src` to `dst` as a list of traversed nodes,
    /// starting with `src` and ending with `dst`.
    pub fn path_xy(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut at = src;
        while at != dst {
            let dir = self.route_xy(at, dst);
            at = self.neighbor(at, dir).expect("XY route stays in mesh");
            path.push(at);
        }
        path
    }

    /// Number of link traversals between two nodes (Manhattan distance).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.coord_of(src).manhattan(self.coord_of(dst))
    }

    /// A stable index for the directed link out of `node` in `dir`, for
    /// array-indexed link state. Returns indices in
    /// `0 .. num_nodes() * 4`.
    ///
    /// # Panics
    ///
    /// Panics for `Direction::Local` (not a link).
    pub fn link_index(&self, node: NodeId, dir: Direction) -> usize {
        assert!(dir != Direction::Local, "local port is not a link");
        node.index() * 4 + dir.port_index()
    }

    /// Upper bound of [`Mesh::link_index`] values.
    pub fn num_link_slots(&self) -> usize {
        self.num_nodes() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(4, 4).unwrap()
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(Mesh::new(0, 4).is_err());
        assert!(Mesh::new(4, 0).is_err());
    }

    #[test]
    fn coord_node_roundtrip() {
        let m = mesh4();
        for i in 0..16 {
            let n = NodeId::new(i);
            assert_eq!(m.node_at(m.coord_of(n)), n);
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = mesh4();
        // Corner (0,0) = node 0.
        assert_eq!(m.neighbor(NodeId::new(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId::new(0), Direction::South), None);
        assert_eq!(
            m.neighbor(NodeId::new(0), Direction::East),
            Some(NodeId::new(1))
        );
        assert_eq!(
            m.neighbor(NodeId::new(0), Direction::North),
            Some(NodeId::new(4))
        );
        assert_eq!(m.neighbor(NodeId::new(0), Direction::Local), None);
    }

    #[test]
    fn xy_route_goes_x_first() {
        let m = mesh4();
        // From (0,0) to (2,3): first two hops east.
        assert_eq!(m.route_xy(NodeId::new(0), NodeId::new(14)), Direction::East);
        assert_eq!(m.route_xy(NodeId::new(1), NodeId::new(14)), Direction::East);
        assert_eq!(
            m.route_xy(NodeId::new(2), NodeId::new(14)),
            Direction::North
        );
        assert_eq!(
            m.route_xy(NodeId::new(14), NodeId::new(14)),
            Direction::Local
        );
    }

    #[test]
    fn paths_are_minimal() {
        let m = mesh4();
        for s in 0..16 {
            for d in 0..16 {
                let src = NodeId::new(s);
                let dst = NodeId::new(d);
                let path = m.path_xy(src, dst);
                assert_eq!(path.len(), m.hops(src, dst) + 1, "{src}->{dst}");
                assert_eq!(path[0], src);
                assert_eq!(*path.last().unwrap(), dst);
                // Consecutive nodes are mesh neighbors.
                for w in path.windows(2) {
                    assert_eq!(m.hops(w[0], w[1]), 1);
                }
            }
        }
    }

    #[test]
    fn link_indices_are_unique() {
        let m = mesh4();
        let mut seen = std::collections::HashSet::new();
        for n in 0..16 {
            for dir in [
                Direction::East,
                Direction::West,
                Direction::North,
                Direction::South,
            ] {
                assert!(seen.insert(m.link_index(NodeId::new(n), dir)));
            }
        }
        assert!(seen.iter().all(|&i| i < m.num_link_slots()));
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::North.opposite(), Direction::South);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 3)), 6);
        assert_eq!(Coord::new(2, 1).manhattan(Coord::new(2, 1)), 0);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn coord_of_out_of_range_panics() {
        mesh4().coord_of(NodeId::new(16));
    }

    #[test]
    #[should_panic(expected = "not a link")]
    fn local_link_index_panics() {
        mesh4().link_index(NodeId::new(0), Direction::Local);
    }

    #[test]
    fn non_square_mesh() {
        let m = Mesh::new(8, 2).unwrap();
        assert_eq!(m.num_nodes(), 16);
        assert_eq!(m.coord_of(NodeId::new(9)), Coord::new(1, 1));
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(15)), 8);
    }
}
