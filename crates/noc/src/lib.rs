//! 2-D packet-switched mesh interconnect models for the `consim` CMP
//! simulator.
//!
//! The paper's machine (Table III) connects its 16 cores with a 2-D
//! packet-switched mesh using virtual-channel flow control, dimension-order
//! routing, and a 3-stage router pipeline with speculative virtual-channel
//! and switch allocation. This crate provides two models of that network:
//!
//! * [`flit::Network`] — a flit-level, cycle-driven model with per-VC input
//!   buffers, credit-based flow control, and a 3-stage (RC / speculative
//!   VA+SA / ST) router pipeline. Used standalone for validation tests and
//!   the NoC micro-benchmarks.
//! * [`contention::ContentionModel`] — a fast packet-level model that walks a
//!   packet's XY path reserving link time, so congestion (the paper's
//!   "interconnect latency is 20% lower for round robin than affinity"
//!   effect) still emerges. This is what the full-system engine uses, since
//!   full flit-level simulation of multi-million-reference runs would be
//!   prohibitive (the same trade-off the paper discusses in its simulation
//!   methodology section).
//!
//! Both models share [`topology::Mesh`] (coordinates, XY routes) and
//! [`packet::Packet`].
//!
//! # Examples
//!
//! ```
//! use consim_noc::topology::Mesh;
//! use consim_noc::contention::ContentionModel;
//! use consim_noc::packet::Packet;
//! use consim_types::{Cycle, NodeId};
//!
//! let mesh = Mesh::new(4, 4)?;
//! let mut noc = ContentionModel::new(mesh, 1, 3);
//! let packet = Packet::data(NodeId::new(0), NodeId::new(15));
//! let arrival = noc.send(&packet, Cycle::ZERO);
//! assert!(arrival > Cycle::ZERO);
//! # Ok::<(), consim_types::SimError>(())
//! ```

pub mod contention;
pub mod flit;
pub mod packet;
pub mod stats;
pub mod topology;

pub use contention::{ContentionModel, ReservationCalendar};
pub use flit::{Network, NocConfig};
pub use packet::{Packet, PacketClass};
pub use stats::NocStats;
pub use topology::{Coord, Direction, Mesh};
