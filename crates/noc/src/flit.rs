//! Flit-level, cycle-driven mesh network model.
//!
//! Implements the paper's router microarchitecture: a 3-stage pipeline —
//! route computation (RC), speculative combined virtual-channel/switch
//! allocation (VA+SA), and switch traversal (ST) — with credit-based
//! virtual-channel flow control and XY dimension-order routing.
//!
//! Within one [`Network::step`] the stages are processed in *reverse*
//! pipeline order (ST, then VA+SA, then RC, then injection), so a flit
//! advances at most one stage per cycle, giving each hop its 3-cycle router
//! delay plus one link cycle.

use crate::packet::Packet;
use crate::stats::NocStats;
use crate::topology::{Direction, Mesh};
use consim_types::{Cycle, NodeId, SimError};
use std::collections::VecDeque;

/// Flit-level network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Virtual channels per input port.
    pub num_vcs: usize,
    /// Buffer depth (flits) per virtual channel.
    pub buf_depth: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            num_vcs: 2,
            buf_depth: 4,
        }
    }
}

/// One flit in flight.
#[derive(Debug, Clone, Copy)]
struct Flit {
    seq: u64,
    dst: NodeId,
    is_head: bool,
    is_tail: bool,
}

/// Pipeline stage of the packet at the front of an input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcStage {
    /// No packet, or head flit awaiting route computation.
    Idle,
    /// Route computed; needs an output VC (head only).
    NeedVc,
    /// Output VC held; body/tail flits stream through.
    Active,
}

/// Per-input-VC state.
#[derive(Debug, Clone)]
struct VcState {
    buf: VecDeque<Flit>,
    stage: VcStage,
    route: Option<Direction>,
    out_vc: usize,
    granted: bool,
}

impl VcState {
    fn new() -> Self {
        Self {
            buf: VecDeque::new(),
            stage: VcStage::Idle,
            route: None,
            out_vc: 0,
            granted: false,
        }
    }

    fn reset_packet_state(&mut self) {
        self.stage = VcStage::Idle;
        self.route = None;
        self.out_vc = 0;
        self.granted = false;
    }
}

/// One mesh router: 5 input ports x V virtual channels.
#[derive(Debug, Clone)]
struct Router {
    /// `inputs[port][vc]`.
    inputs: Vec<Vec<VcState>>,
    /// Downstream VC allocation per output port: `out_vc_busy[port][vc]`.
    out_vc_busy: Vec<Vec<bool>>,
    /// Credits toward the downstream buffer per output port and VC.
    credits: Vec<Vec<usize>>,
    /// Round-robin arbitration pointer per output port.
    rr: Vec<usize>,
}

impl Router {
    fn new(cfg: &NocConfig) -> Self {
        Self {
            inputs: (0..5)
                .map(|_| (0..cfg.num_vcs).map(|_| VcState::new()).collect())
                .collect(),
            out_vc_busy: vec![vec![false; cfg.num_vcs]; 5],
            credits: vec![vec![cfg.buf_depth; cfg.num_vcs]; 5],
            rr: vec![0; 5],
        }
    }
}

/// A packet that completed its journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredPacket {
    /// The original packet.
    pub packet: Packet,
    /// Cycle it was injected.
    pub injected: Cycle,
    /// Cycle its tail flit was ejected.
    pub delivered: Cycle,
}

impl DeliveredPacket {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.delivered - self.injected
    }
}

/// The flit-level network.
///
/// # Examples
///
/// ```
/// use consim_noc::{Mesh, Network, NocConfig, Packet};
/// use consim_types::NodeId;
///
/// let mut net = Network::new(Mesh::new(4, 4)?, NocConfig::default());
/// net.inject(Packet::control(NodeId::new(0), NodeId::new(5)));
/// let delivered = net.run_until_idle(1_000)?;
/// assert_eq!(delivered.len(), 1);
/// assert!(delivered[0].latency() > 0);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    cfg: NocConfig,
    routers: Vec<Router>,
    /// Per-node injection queues.
    inject_queues: Vec<VecDeque<(Packet, u64, Cycle)>>,
    cycle: Cycle,
    next_seq: u64,
    /// seq -> (packet, injected) for in-flight packets.
    inflight: std::collections::HashMap<u64, (Packet, Cycle)>,
    delivered: Vec<DeliveredPacket>,
    stats: NocStats,
}

impl Network {
    /// Creates an idle network.
    pub fn new(mesh: Mesh, cfg: NocConfig) -> Self {
        assert!(
            cfg.num_vcs > 0 && cfg.buf_depth > 0,
            "VCs and buffers must be nonzero"
        );
        Self {
            routers: (0..mesh.num_nodes()).map(|_| Router::new(&cfg)).collect(),
            inject_queues: vec![VecDeque::new(); mesh.num_nodes()],
            mesh,
            cfg,
            cycle: Cycle::ZERO,
            next_seq: 0,
            inflight: std::collections::HashMap::new(),
            delivered: Vec::new(),
            stats: NocStats::default(),
        }
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The mesh this network runs on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Queues a packet for injection at its source node.
    pub fn inject(&mut self, packet: Packet) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.injected += 1;
        self.inject_queues[packet.src.index()].push_back((packet, seq, self.cycle));
    }

    /// Whether any packet is queued or in flight.
    pub fn is_busy(&self) -> bool {
        !self.inflight.is_empty() || self.inject_queues.iter().any(|q| !q.is_empty())
    }

    /// Packets delivered so far (drains the internal buffer).
    pub fn take_delivered(&mut self) -> Vec<DeliveredPacket> {
        std::mem::take(&mut self.delivered)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Steps until every injected packet is delivered.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if the network fails to drain within
    /// `max_cycles` (would indicate deadlock or livelock).
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Result<Vec<DeliveredPacket>, SimError> {
        let deadline = self.cycle + max_cycles;
        while self.is_busy() {
            if self.cycle >= deadline {
                return Err(SimError::invariant(format!(
                    "network failed to drain within {max_cycles} cycles ({} in flight)",
                    self.inflight.len()
                )));
            }
            self.step();
        }
        Ok(self.take_delivered())
    }

    /// Advances the network by one cycle.
    pub fn step(&mut self) {
        // Arrivals staged during ST, applied at end of the step so a flit
        // cannot traverse two links in one cycle.
        let mut arrivals: Vec<(usize, usize, usize, Flit)> = Vec::new(); // (router, port, vc, flit)
        let mut credit_returns: Vec<(usize, usize, usize)> = Vec::new(); // (router, out_port, vc)

        // Phase 1: switch traversal of flits granted last cycle.
        for r in 0..self.routers.len() {
            for port in 0..5 {
                for vc in 0..self.cfg.num_vcs {
                    if !self.routers[r].inputs[port][vc].granted {
                        continue;
                    }
                    let (flit, route, out_vc) = {
                        let state = &mut self.routers[r].inputs[port][vc];
                        state.granted = false;
                        let flit = state.buf.pop_front().expect("granted VC has a flit");
                        (
                            flit,
                            state.route.expect("granted VC has a route"),
                            state.out_vc,
                        )
                    };
                    // Return a credit upstream for the buffer slot we freed
                    // (injection and ejection queues are endpoint buffers,
                    // not credited links).
                    if port != Direction::Local.port_index() {
                        let in_dir = port_direction(port);
                        // The flit came over the link from `upstream` in the
                        // direction opposite to our input port label.
                        if let Some(upstream) = self.mesh.neighbor(node(r), in_dir) {
                            let out_port = in_dir.opposite().port_index();
                            credit_returns.push((upstream.index(), out_port, vc));
                        }
                    }
                    if route == Direction::Local {
                        // Ejection: endpoint sink.
                        if flit.is_tail {
                            self.finish_packet(flit.seq);
                        }
                    } else {
                        let downstream = self
                            .mesh
                            .neighbor(node(r), route)
                            .expect("XY route stays in mesh");
                        let in_port = route.opposite().port_index();
                        arrivals.push((downstream.index(), in_port, out_vc, flit));
                    }
                    if flit.is_tail {
                        // Release the downstream VC and rearm this input VC
                        // for the next packet.
                        if route != Direction::Local {
                            self.routers[r].out_vc_busy[route.port_index()][out_vc] = false;
                        }
                        self.routers[r].inputs[port][vc].reset_packet_state();
                    }
                }
            }
        }
        for (r, port, vc) in credit_returns {
            self.routers[r].credits[port][vc] += 1;
            debug_assert!(
                self.routers[r].credits[port][vc] <= self.cfg.buf_depth,
                "credit overflow"
            );
        }

        // Phase 2: combined (speculative) VC + switch allocation.
        for r in 0..self.routers.len() {
            let mut input_port_used = [false; 5];
            for out_port in 0..5 {
                let num_candidates = 5 * self.cfg.num_vcs;
                let start = self.routers[r].rr[out_port];
                let mut winner: Option<(usize, usize, Option<usize>)> = None;
                for k in 0..num_candidates {
                    let idx = (start + k) % num_candidates;
                    let (port, vc) = (idx / self.cfg.num_vcs, idx % self.cfg.num_vcs);
                    if input_port_used[port] {
                        continue;
                    }
                    let state = &self.routers[r].inputs[port][vc];
                    if state.granted || state.buf.is_empty() {
                        continue;
                    }
                    if state.route.map(Direction::port_index) != Some(out_port) {
                        continue;
                    }
                    match state.stage {
                        VcStage::Active => {
                            if out_port == Direction::Local.port_index()
                                || self.routers[r].credits[out_port][state.out_vc] > 0
                            {
                                winner = Some((port, vc, None));
                            }
                        }
                        VcStage::NeedVc => {
                            // Speculative VA+SA: claim a free downstream VC
                            // and the switch in the same cycle.
                            if out_port == Direction::Local.port_index() {
                                winner = Some((port, vc, Some(0)));
                            } else {
                                let free = (0..self.cfg.num_vcs).find(|&v| {
                                    !self.routers[r].out_vc_busy[out_port][v]
                                        && self.routers[r].credits[out_port][v] > 0
                                });
                                if let Some(v) = free {
                                    winner = Some((port, vc, Some(v)));
                                }
                            }
                        }
                        VcStage::Idle => {}
                    }
                    if winner.is_some() {
                        self.routers[r].rr[out_port] = (idx + 1) % num_candidates;
                        break;
                    }
                }
                if let Some((port, vc, newly_allocated)) = winner {
                    input_port_used[port] = true;
                    if let Some(v) = newly_allocated {
                        let state = &mut self.routers[r].inputs[port][vc];
                        state.out_vc = v;
                        state.stage = VcStage::Active;
                        if out_port != Direction::Local.port_index() {
                            self.routers[r].out_vc_busy[out_port][v] = true;
                        }
                    }
                    let out_vc = self.routers[r].inputs[port][vc].out_vc;
                    if out_port != Direction::Local.port_index() {
                        debug_assert!(self.routers[r].credits[out_port][out_vc] > 0);
                        self.routers[r].credits[out_port][out_vc] -= 1;
                    }
                    self.routers[r].inputs[port][vc].granted = true;
                }
            }
        }

        // Phase 3: route computation for fresh head flits.
        for r in 0..self.routers.len() {
            for port in 0..5 {
                for vc in 0..self.cfg.num_vcs {
                    let front_head = {
                        let state = &self.routers[r].inputs[port][vc];
                        state.stage == VcStage::Idle
                            && state.buf.front().map(|f| f.is_head).unwrap_or(false)
                    };
                    if front_head {
                        let dst = self.routers[r].inputs[port][vc].buf[0].dst;
                        let route = self.mesh.route_xy(node(r), dst);
                        let state = &mut self.routers[r].inputs[port][vc];
                        state.route = Some(route);
                        state.stage = VcStage::NeedVc;
                    }
                }
            }
        }

        // Phase 4: injection — one packet per node per cycle, into an idle
        // local-input VC (endpoint source queues are uncredited).
        for n in 0..self.mesh.num_nodes() {
            if self.inject_queues[n].is_empty() {
                continue;
            }
            let local = Direction::Local.port_index();
            let free_vc = (0..self.cfg.num_vcs).find(|&v| {
                let state = &self.routers[n].inputs[local][v];
                state.buf.is_empty() && state.stage == VcStage::Idle
            });
            if let Some(v) = free_vc {
                let (packet, seq, injected) = self.inject_queues[n].pop_front().expect("nonempty");
                let flits = packet.flits();
                for i in 0..flits {
                    self.routers[n].inputs[local][v].buf.push_back(Flit {
                        seq,
                        dst: packet.dst,
                        is_head: i == 0,
                        is_tail: i == flits - 1,
                    });
                }
                self.inflight.insert(seq, (packet, injected));
            }
        }

        // Apply staged arrivals; they become visible next cycle.
        for (r, port, vc, flit) in arrivals {
            let state = &mut self.routers[r].inputs[port][vc];
            debug_assert!(state.buf.len() < self.cfg.buf_depth, "buffer overflow");
            state.buf.push_back(flit);
        }

        self.cycle += 1;
    }

    fn finish_packet(&mut self, seq: u64) {
        let (packet, injected) = self
            .inflight
            .remove(&seq)
            .expect("delivered packet was in flight");
        let delivered = self.cycle + 1; // tail lands at the endpoint next cycle
        let hops = self.mesh.hops(packet.src, packet.dst);
        self.stats.record(&packet, hops, delivered - injected);
        self.delivered.push(DeliveredPacket {
            packet,
            injected,
            delivered,
        });
    }
}

/// The direction label of an input port index (inverse of
/// [`Direction::port_index`]).
fn port_direction(port: usize) -> Direction {
    Direction::ALL[port]
}

fn node(index: usize) -> NodeId {
    NodeId::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(Mesh::new(4, 4).unwrap(), NocConfig::default())
    }

    #[test]
    fn single_control_packet_is_delivered() {
        let mut n = net();
        n.inject(Packet::control(NodeId::new(0), NodeId::new(1)));
        let d = n.run_until_idle(100).unwrap();
        assert_eq!(d.len(), 1);
        // 2 routers x 3-stage pipeline + 1 link cycle + ejection landing.
        assert!(d[0].latency() >= 6, "latency {}", d[0].latency());
        assert!(d[0].latency() <= 10, "latency {}", d[0].latency());
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut near = net();
        near.inject(Packet::control(NodeId::new(0), NodeId::new(1)));
        let near_lat = near.run_until_idle(100).unwrap()[0].latency();

        let mut far = net();
        far.inject(Packet::control(NodeId::new(0), NodeId::new(15)));
        let far_lat = far.run_until_idle(200).unwrap()[0].latency();
        assert!(far_lat > near_lat, "{far_lat} vs {near_lat}");
    }

    #[test]
    fn data_packet_pays_serialization() {
        let mut a = net();
        a.inject(Packet::control(NodeId::new(0), NodeId::new(3)));
        let ctrl = a.run_until_idle(200).unwrap()[0].latency();

        let mut b = net();
        b.inject(Packet::data(NodeId::new(0), NodeId::new(3)));
        let data = b.run_until_idle(200).unwrap()[0].latency();
        assert_eq!(data - ctrl, 4, "4 extra body/tail flits trail the head");
    }

    #[test]
    fn local_packet_is_ejected() {
        let mut n = net();
        n.inject(Packet::control(NodeId::new(6), NodeId::new(6)));
        let d = n.run_until_idle(50).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d[0].latency() <= 5);
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut n = net();
        let mut expected = 0;
        for s in 0..16 {
            for d in 0..16 {
                n.inject(Packet::control(NodeId::new(s), NodeId::new(d)));
                expected += 1;
            }
        }
        let delivered = n.run_until_idle(20_000).unwrap();
        assert_eq!(delivered.len(), expected);
        assert_eq!(n.stats().packets, expected as u64);
    }

    #[test]
    fn contention_slows_sharing_flows() {
        // Two flows sharing the 0->1->2->3 links vs the same flows alone.
        let mut alone = net();
        for _ in 0..20 {
            alone.inject(Packet::data(NodeId::new(0), NodeId::new(3)));
        }
        let alone_done = {
            let d = alone.run_until_idle(10_000).unwrap();
            d.iter().map(|p| p.delivered.raw()).max().unwrap()
        };

        let mut shared = net();
        for _ in 0..20 {
            shared.inject(Packet::data(NodeId::new(0), NodeId::new(3)));
            shared.inject(Packet::data(NodeId::new(1), NodeId::new(3)));
        }
        let shared_done = {
            let d = shared.run_until_idle(20_000).unwrap();
            d.iter()
                .filter(|p| p.packet.src == NodeId::new(0))
                .map(|p| p.delivered.raw())
                .max()
                .unwrap()
        };
        assert!(
            shared_done > alone_done,
            "shared {shared_done} should exceed alone {alone_done}"
        );
    }

    #[test]
    fn run_until_idle_reports_livelock_budget_exhaustion() {
        let mut n = net();
        n.inject(Packet::data(NodeId::new(0), NodeId::new(15)));
        let err = n.run_until_idle(3).unwrap_err();
        assert!(err.to_string().contains("drain"));
    }

    #[test]
    fn take_delivered_drains() {
        let mut n = net();
        n.inject(Packet::control(NodeId::new(0), NodeId::new(1)));
        n.run_until_idle(100).unwrap();
        assert!(n.take_delivered().is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut n = net();
            for s in 0..8 {
                n.inject(Packet::data(NodeId::new(s), NodeId::new(15 - s)));
            }
            let mut d = n.run_until_idle(10_000).unwrap();
            d.sort_by_key(|p| (p.packet.src, p.packet.dst));
            d.iter().map(|p| p.latency()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn vc_count_one_still_works() {
        let mut n = Network::new(
            Mesh::new(4, 4).unwrap(),
            NocConfig {
                num_vcs: 1,
                buf_depth: 2,
            },
        );
        for s in 0..8 {
            n.inject(Packet::data(NodeId::new(s), NodeId::new(15 - s)));
        }
        let d = n.run_until_idle(50_000).unwrap();
        assert_eq!(d.len(), 8);
    }
}
