//! Fast packet-level mesh model with link contention.
//!
//! The full-system engine issues millions of coherence messages per run;
//! simulating each at flit granularity is intractable (the paper makes the
//! same observation about simulation time for many-core studies). This model
//! keeps the two properties the results depend on:
//!
//! 1. *Distance*: latency grows with XY hop count (router pipeline + link
//!    traversal per hop, plus tail serialization).
//! 2. *Contention*: each directed link carries one flit per `link_latency`
//!    cycles; packets occupy link time intervals and later packets must fit
//!    into the gaps, so traffic concentrated by affinity scheduling congests
//!    shared links while round-robin traffic spreads out.
//!
//! Reservations are *gap-aware*: each link keeps a short list of busy
//! intervals, and a packet takes the earliest gap at or after its ready
//! time. This makes the model robust to the engine's event ordering — a
//! transaction can reserve link time far in the future (e.g. after a memory
//! fetch) without falsely delaying packets that depart earlier but are
//! simulated later.

use crate::packet::Packet;
use crate::stats::NocStats;
use crate::topology::Mesh;
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_trace::{EventClass, TraceEvent, TraceSink};
use consim_types::{Cycle, SimError};
use std::collections::VecDeque;
use std::sync::Arc;

/// Busy intervals older than this (relative to the latest departure seen)
/// are pruned; the engine's event skew is bounded by one transaction
/// latency, far below this horizon.
const PRUNE_HORIZON: u64 = 100_000;

/// A reservation calendar: non-overlapping `(start, end)` busy intervals
/// sorted by start, with abutting intervals coalesced.
///
/// Used for every contended, serially-occupied resource in the simulator:
/// mesh links here, and memory-controller service slots in the engine.
/// Reservations are gap-aware, so out-of-order callers (the engine's event
/// interleaving) place early work into gaps before far-future reservations.
///
/// Two properties keep every operation cheap without changing any result:
///
/// * Sorted non-overlapping intervals have strictly increasing *ends*, so
///   both the first interval that can constrain a probe and the insertion
///   point binary-search instead of scanning from the front.
/// * A reservation that exactly abuts a neighbor extends it in place. The
///   set of busy cycles — the only thing `probe` observes — is identical,
///   but the back-to-back queueing the engine produces under load collapses
///   into a handful of intervals instead of one per packet, which is what
///   kept the old formulation's linear scans hot.
/// * The store is a ring buffer, so pruning expired intervals off the front
///   costs only the intervals dropped — not a shift of everything behind
///   them on every reservation.
///
/// # Examples
///
/// ```
/// use consim_noc::contention::ReservationCalendar;
///
/// let mut cal = ReservationCalendar::default();
/// assert_eq!(cal.reserve(10, 5, 0), 10); // [10, 15)
/// assert_eq!(cal.reserve(12, 5, 0), 15); // queues behind
/// assert_eq!(cal.reserve(0, 5, 0), 0);   // fits the gap before
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReservationCalendar {
    intervals: VecDeque<(u64, u64)>,
}

impl ReservationCalendar {
    /// Index of the first interval that can constrain a request ready at
    /// `ready`: intervals ending at or before `ready` never move the probe
    /// cursor (their start precedes their end, so the too-small-gap check
    /// cannot fire either). Ends are strictly increasing, so binary search.
    fn first_constraining(&self, ready: u64) -> usize {
        self.intervals.partition_point(|&(_, e)| e <= ready)
    }

    /// Finds the earliest start `>= ready` with `busy` free cycles, without
    /// reserving.
    pub fn probe(&self, ready: u64, busy: u64) -> u64 {
        let mut t = ready;
        for &(s, e) in self.intervals.range(self.first_constraining(ready)..) {
            if t + busy <= s {
                break;
            }
            t = t.max(e);
        }
        t
    }

    /// Reserves the earliest `busy`-cycle slot at or after `ready`; returns
    /// its start. Intervals ending before `prune_before` are dropped.
    pub fn reserve(&mut self, ready: u64, busy: u64, prune_before: u64) -> u64 {
        // Prune stale intervals from the front (ends are sorted).
        let keep_from = self.intervals.partition_point(|&(_, e)| e < prune_before);
        if keep_from > 0 {
            self.intervals.drain(..keep_from);
        }
        let start = self.probe(ready, busy);
        let end = start + busy;
        // `probe` guarantees [start, end) overlaps nothing, so the
        // predecessor ends at or before `start` and the successor starts at
        // or after `end`; coalesce where they abut exactly.
        let pos = self.intervals.partition_point(|&(s, _)| s <= start);
        let abuts_prev = pos > 0 && self.intervals[pos - 1].1 == start;
        let abuts_next = pos < self.intervals.len() && self.intervals[pos].0 == end;
        match (abuts_prev, abuts_next) {
            (true, true) => {
                self.intervals[pos - 1].1 = self.intervals[pos].1;
                self.intervals.remove(pos);
            }
            (true, false) => self.intervals[pos - 1].1 = end,
            (false, true) => self.intervals[pos].0 = start,
            (false, false) => self.intervals.insert(pos, (start, end)),
        }
        start
    }
}

/// Packet-level network model with per-link reservation calendars.
///
/// # Examples
///
/// ```
/// use consim_noc::{ContentionModel, Mesh, Packet};
/// use consim_types::{Cycle, NodeId};
///
/// let mut noc = ContentionModel::new(Mesh::new(4, 4)?, 1, 3);
/// let p = Packet::control(NodeId::new(0), NodeId::new(3));
/// let uncontended = noc.send(&p, Cycle::ZERO);
/// // 3 hops x (3-cycle router + 1-cycle link) = 12 cycles.
/// assert_eq!(uncontended.raw(), 12);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContentionModel {
    mesh: Mesh,
    link_latency: u64,
    router_pipeline: u64,
    links: Vec<ReservationCalendar>,
    /// Total busy cycles per link, for utilization reporting.
    link_busy: Vec<u64>,
    /// Latest departure time seen (drives interval pruning).
    latest_depart: u64,
    stats: NocStats,
    /// Optional trace sink for per-packet contention-stall events.
    trace: Option<Arc<dyn TraceSink>>,
}

impl ContentionModel {
    /// Creates a model for `mesh` with the given per-hop latencies.
    pub fn new(mesh: Mesh, link_latency: u64, router_pipeline: u64) -> Self {
        Self {
            mesh,
            link_latency: link_latency.max(1),
            router_pipeline,
            links: vec![ReservationCalendar::default(); mesh.num_link_slots()],
            link_busy: vec![0; mesh.num_link_slots()],
            latest_depart: 0,
            stats: NocStats::default(),
            trace: None,
        }
    }

    /// Installs (or clears) a trace sink receiving
    /// [`TraceEvent::NocStall`] events for packets that queue behind
    /// earlier link reservations.
    pub fn set_trace_sink(&mut self, sink: Option<Arc<dyn TraceSink>>) {
        self.trace = sink;
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Sends `packet` at `depart`; returns the cycle its tail flit arrives.
    ///
    /// Reserves link time along the packet's XY path, so other packets
    /// through the same links observe queueing delay.
    pub fn send(&mut self, packet: &Packet, depart: Cycle) -> Cycle {
        let flits = packet.flits() as u64;
        self.stats.injected += 1;
        self.latest_depart = self.latest_depart.max(depart.raw());
        let prune_before = self.latest_depart.saturating_sub(PRUNE_HORIZON);
        if packet.src == packet.dst {
            // Local delivery still pays one router traversal.
            let arrival = depart + self.router_pipeline;
            self.stats.record(packet, 0, arrival - depart);
            return arrival;
        }
        let mut head = depart;
        let mut hops = 0usize;
        let mut stall_cycles = 0u64;
        let mut at = packet.src;
        while at != packet.dst {
            let dir = self.mesh.route_xy(at, packet.dst);
            let link = self.mesh.link_index(at, dir);
            // Head waits for the router pipeline, then for a link slot.
            let ready = (head + self.router_pipeline).raw();
            let busy = flits * self.link_latency;
            let start = self.links[link].reserve(ready, busy, prune_before);
            stall_cycles += start - ready;
            self.link_busy[link] += busy;
            head = Cycle::new(start + self.link_latency);
            at = self.mesh.neighbor(at, dir).expect("XY route stays in mesh");
            hops += 1;
        }
        if stall_cycles > 0 {
            if let Some(sink) = &self.trace {
                if sink.wants(EventClass::NocStall) {
                    sink.record(&TraceEvent::NocStall {
                        at: depart.raw(),
                        src: packet.src.index() as u32,
                        dst: packet.dst.index() as u32,
                        stall_cycles,
                    });
                }
            }
        }
        // Tail flit trails the head by (flits-1) link times.
        let arrival = head + (flits - 1) * self.link_latency;
        self.stats.record(packet, hops, arrival - depart);
        arrival
    }

    /// Latency a packet *would* see if sent at `depart`, without reserving
    /// anything (for what-if probes).
    pub fn probe_latency(&self, packet: &Packet, depart: Cycle) -> u64 {
        let flits = packet.flits() as u64;
        if packet.src == packet.dst {
            return self.router_pipeline;
        }
        let mut head = depart;
        let mut at = packet.src;
        while at != packet.dst {
            let dir = self.mesh.route_xy(at, packet.dst);
            let link = self.mesh.link_index(at, dir);
            let ready = (head + self.router_pipeline).raw();
            let start = self.links[link].probe(ready, flits * self.link_latency);
            head = Cycle::new(start + self.link_latency);
            at = self.mesh.neighbor(at, dir).expect("XY route stays in mesh");
        }
        (head + (flits - 1) * self.link_latency) - depart
    }

    /// The minimum (uncontended) latency between two nodes for a packet of
    /// `flits` flits.
    pub fn base_latency(
        &self,
        src: consim_types::NodeId,
        dst: consim_types::NodeId,
        flits: usize,
    ) -> u64 {
        if src == dst {
            return self.router_pipeline;
        }
        let hops = self.mesh.hops(src, dst) as u64;
        hops * (self.router_pipeline + self.link_latency) + (flits as u64 - 1) * self.link_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Mean link utilization in `[0,1]` over the first `elapsed` cycles.
    pub fn mean_link_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 || self.link_busy.is_empty() {
            return 0.0;
        }
        let total: u64 = self.link_busy.iter().sum();
        total as f64 / (elapsed as f64 * self.link_busy.len() as f64)
    }

    /// Busiest-link utilization in `[0,1]` over the first `elapsed` cycles.
    pub fn peak_link_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let max = self.link_busy.iter().copied().max().unwrap_or(0);
        max as f64 / elapsed as f64
    }

    /// Clears reservations and statistics (for reuse across measurement
    /// intervals).
    pub fn reset(&mut self) {
        for link in &mut self.links {
            link.intervals.clear();
        }
        self.link_busy.fill(0);
        self.latest_depart = 0;
        self.stats = NocStats::default();
    }
}

impl Snapshot for ReservationCalendar {
    fn save(&self, w: &mut SectionBuf) {
        w.put_usize(self.intervals.len());
        for &(start, end) in &self.intervals {
            w.put_u64(start);
            w.put_u64(end);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        let count = r.get_usize()?;
        self.intervals.clear();
        for _ in 0..count {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            self.intervals.push_back((start, end));
        }
        Ok(())
    }
}

impl Snapshot for ContentionModel {
    fn save(&self, w: &mut SectionBuf) {
        consim_snap::save_items(w, &self.links);
        w.put_u64_slice(&self.link_busy);
        w.put_u64(self.latest_depart);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        consim_snap::restore_items(r, &mut self.links)?;
        let busy = r.get_u64_vec()?;
        if busy.len() != self.link_busy.len() {
            return Err(SimError::snapshot(
                consim_types::SnapshotErrorKind::Corrupt,
                format!(
                    "noc snapshot has {} link-busy counters, mesh has {}",
                    busy.len(),
                    self.link_busy.len()
                ),
            ));
        }
        self.link_busy = busy;
        self.latest_depart = r.get_u64()?;
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::NodeId;

    fn model() -> ContentionModel {
        ContentionModel::new(Mesh::new(4, 4).unwrap(), 1, 3)
    }

    #[test]
    fn uncontended_latency_matches_formula() {
        let mut noc = model();
        // node0 (0,0) -> node15 (3,3): 6 hops.
        let p = Packet::control(NodeId::new(0), NodeId::new(15));
        let arrival = noc.send(&p, Cycle::ZERO);
        assert_eq!(arrival.raw(), 6 * (3 + 1));
        assert_eq!(
            arrival.raw(),
            noc.base_latency(NodeId::new(0), NodeId::new(15), 1)
        );
    }

    #[test]
    fn data_packets_pay_serialization() {
        let mut noc = model();
        let p = Packet::data(NodeId::new(0), NodeId::new(1));
        let arrival = noc.send(&p, Cycle::ZERO);
        // 1 hop: 3 router + 1 link + 4 extra tail flits.
        assert_eq!(arrival.raw(), 3 + 1 + 4);
    }

    #[test]
    fn local_delivery_pays_router_only() {
        let mut noc = model();
        let p = Packet::data(NodeId::new(5), NodeId::new(5));
        assert_eq!(noc.send(&p, Cycle::new(10)).raw(), 13);
    }

    #[test]
    fn second_packet_queues_behind_first() {
        let mut noc = model();
        let p = Packet::data(NodeId::new(0), NodeId::new(1));
        let first = noc.send(&p, Cycle::ZERO);
        let second = noc.send(&p, Cycle::ZERO);
        assert!(second > first, "contended packet should be slower");
        // First reserves the single link 0->1 for 5 flit-cycles starting at
        // cycle 3; second's head starts at 8.
        assert_eq!(second.raw(), (3 + 5) + 1 + 4);
    }

    #[test]
    fn earlier_departure_fits_into_gap_before_future_reservation() {
        // An engine transaction may reserve far in the future; a packet
        // departing earlier but simulated later must not queue behind it.
        let mut noc = model();
        let p = Packet::data(NodeId::new(0), NodeId::new(1));
        let future = noc.send(&p, Cycle::new(10_000));
        assert_eq!(future.raw() - 10_000, 8);
        let early = noc.send(&p, Cycle::ZERO);
        assert_eq!(early.raw(), 8, "early packet must use the free gap");
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let mut noc = model();
        let data = Packet::data(NodeId::new(0), NodeId::new(1));
        let ctrl = Packet::control(NodeId::new(0), NodeId::new(1));
        // Occupy [3, 8) and [10, 15): the 2-cycle gap fits a control packet
        // but not a 5-flit data packet.
        noc.send(&data, Cycle::ZERO);
        noc.send(&data, Cycle::new(7)); // ready at 10 -> [10, 15)
        let ctrl_arrival = noc.send(&ctrl, Cycle::new(5)); // ready 8, gap [8,10)
        assert_eq!(ctrl_arrival.raw(), 9, "control fits the gap");
        let data_arrival = noc.send(&data, Cycle::new(0)); // ready 3, busy 5
        assert!(data_arrival.raw() > 15, "data must wait past both");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut noc = model();
        let a = Packet::data(NodeId::new(0), NodeId::new(1));
        let b = Packet::data(NodeId::new(14), NodeId::new(15));
        let la = noc.send(&a, Cycle::ZERO);
        let lb = noc.send(&b, Cycle::ZERO);
        assert_eq!(la.raw(), lb.raw());
    }

    #[test]
    fn probe_does_not_reserve() {
        let noc0 = model();
        let mut noc = noc0.clone();
        let p = Packet::data(NodeId::new(0), NodeId::new(3));
        let probe = noc.probe_latency(&p, Cycle::ZERO);
        let sent = noc.send(&p, Cycle::ZERO).raw();
        assert_eq!(probe, sent);
        // Probing again now shows the contention the send created...
        assert!(noc.probe_latency(&p, Cycle::ZERO) > probe);
        // ...but a fresh model still shows the base value.
        assert_eq!(noc0.probe_latency(&p, Cycle::ZERO), probe);
    }

    #[test]
    fn reservations_expire_in_time() {
        let mut noc = model();
        let p = Packet::data(NodeId::new(0), NodeId::new(1));
        let first = noc.send(&p, Cycle::ZERO);
        // Departing long after the first packet sees no contention.
        let late = noc.send(&p, Cycle::new(1_000));
        assert_eq!(late.raw() - 1_000, first.raw());
    }

    #[test]
    fn pruning_bounds_calendar_growth() {
        let mut noc = model();
        let p = Packet::data(NodeId::new(0), NodeId::new(1));
        for i in 0..50_000u64 {
            noc.send(&p, Cycle::new(i * 20));
        }
        let link = noc
            .mesh
            .link_index(NodeId::new(0), crate::topology::Direction::East);
        assert!(
            noc.links[link].intervals.len() < PRUNE_HORIZON as usize / 10,
            "calendar must stay bounded: {}",
            noc.links[link].intervals.len()
        );
    }

    #[test]
    fn utilization_accounting() {
        let mut noc = model();
        let p = Packet::data(NodeId::new(0), NodeId::new(1));
        noc.send(&p, Cycle::ZERO);
        assert!(noc.peak_link_utilization(10) >= 0.5 - 1e-9);
        assert!(noc.mean_link_utilization(10) > 0.0);
        noc.reset();
        assert_eq!(noc.peak_link_utilization(10), 0.0);
    }

    #[test]
    fn stats_count_packets_and_hops() {
        let mut noc = model();
        noc.send(
            &Packet::control(NodeId::new(0), NodeId::new(2)),
            Cycle::ZERO,
        );
        noc.send(&Packet::data(NodeId::new(0), NodeId::new(1)), Cycle::ZERO);
        assert_eq!(noc.stats().packets, 2);
        assert_eq!(noc.stats().injected, 2);
        assert_eq!(noc.stats().total_hops, 3);
        assert_eq!(noc.stats().flits, 6);
        assert!(noc.stats().mean_latency() > 0.0);
    }

    #[test]
    fn snapshot_round_trip_preserves_contention_state() {
        let mut noc = model();
        let p = Packet::data(NodeId::new(0), NodeId::new(5));
        for i in 0..20u64 {
            noc.send(&p, Cycle::new(i * 3));
        }
        let mut buf = SectionBuf::new();
        noc.save(&mut buf);
        let mut back = model();
        back.restore(&mut SectionReader::new("noc", buf.as_bytes()))
            .unwrap();
        assert_eq!(back.stats().packets, noc.stats().packets);
        assert_eq!(
            back.mean_link_utilization(100),
            noc.mean_link_utilization(100)
        );
        // Future sends observe identical queueing.
        for i in 0..10u64 {
            assert_eq!(
                back.send(&p, Cycle::new(60 + i)),
                noc.send(&p, Cycle::new(60 + i)),
                "send {i}"
            );
        }
    }

    #[test]
    fn snapshot_rejects_wrong_mesh_shape() {
        let mut noc = model();
        noc.send(
            &Packet::control(NodeId::new(0), NodeId::new(1)),
            Cycle::ZERO,
        );
        let mut buf = SectionBuf::new();
        noc.save(&mut buf);
        let mut other = ContentionModel::new(Mesh::new(2, 2).unwrap(), 1, 3);
        let err = other
            .restore(&mut SectionReader::new("noc", buf.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("items"), "{err}");
    }

    #[test]
    fn contended_sends_emit_stall_events() {
        use consim_trace::RingBufferSink;
        use std::sync::Arc;

        let sink = Arc::new(RingBufferSink::new(16));
        let mut noc = model();
        noc.set_trace_sink(Some(sink.clone()));
        let p = Packet::data(NodeId::new(0), NodeId::new(1));
        noc.send(&p, Cycle::ZERO);
        assert!(sink.is_empty(), "uncontended send must not emit a stall");
        noc.send(&p, Cycle::ZERO);
        let events = sink.snapshot();
        assert_eq!(events.len(), 1);
        match &events[0] {
            consim_trace::TraceEvent::NocStall {
                src,
                dst,
                stall_cycles,
                ..
            } => {
                assert_eq!((*src, *dst), (0, 1));
                // Second packet's head was ready at 3 but the link is busy
                // until 8.
                assert_eq!(*stall_cycles, 5);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
