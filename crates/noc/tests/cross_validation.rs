//! Cross-validation between the flit-level network and the packet-level
//! contention model: the fast model the engine runs on must agree with the
//! detailed model on distance scaling and congestion ordering.

use consim_noc::{ContentionModel, Mesh, Network, NocConfig, Packet};
use consim_types::{Cycle, NodeId};

fn mesh() -> Mesh {
    Mesh::new(4, 4).unwrap()
}

fn flit_latency(p: Packet) -> u64 {
    let mut net = Network::new(mesh(), NocConfig::default());
    net.inject(p);
    net.run_until_idle(10_000).unwrap()[0].latency()
}

#[test]
fn uncontended_latencies_scale_identically_with_distance() {
    let noc = ContentionModel::new(mesh(), 1, 3);
    let mut last_flit = 0;
    let mut last_pkt = 0;
    // Walk increasing distances along the bottom row then up the far column.
    for &dst in &[1usize, 2, 3, 7, 11, 15] {
        let p = Packet::control(NodeId::new(0), NodeId::new(dst));
        let flit = flit_latency(p);
        let pkt = noc.probe_latency(&p, Cycle::ZERO);
        assert!(flit > last_flit, "flit latency must grow with distance");
        assert!(pkt > last_pkt, "packet latency must grow with distance");
        // The models count per-hop cycles slightly differently (the flit
        // model folds the link into its third pipeline stage and pays an
        // ejection pipeline at the destination); they must stay within one
        // hop-count of each other.
        let hops = mesh().hops(NodeId::new(0), NodeId::new(dst)) as u64;
        assert!(
            flit + hops >= pkt && flit <= pkt + 8,
            "models diverged at dst {dst}: flit {flit} vs packet {pkt}"
        );
        last_flit = flit;
        last_pkt = pkt;
    }
}

#[test]
fn serialization_overhead_matches() {
    // Data vs control latency difference is (flits-1) in both models.
    let ctrl = Packet::control(NodeId::new(0), NodeId::new(5));
    let data = Packet::data(NodeId::new(0), NodeId::new(5));
    let flit_delta = flit_latency(data) - flit_latency(ctrl);
    let noc = ContentionModel::new(mesh(), 1, 3);
    let pkt_delta = noc.probe_latency(&data, Cycle::ZERO) - noc.probe_latency(&ctrl, Cycle::ZERO);
    assert_eq!(
        flit_delta, pkt_delta,
        "both models charge 4 tail-flit cycles"
    );
}

#[test]
fn hotspot_congestion_orders_flows_the_same_way() {
    // Eight flows into node 0 vs eight disjoint nearest-neighbor flows:
    // both models must show the hotspot as slower on average.
    let hotspot: Vec<Packet> = (8..16)
        .map(|s| Packet::data(NodeId::new(s), NodeId::new(0)))
        .collect();
    let disjoint: Vec<Packet> = (0..8)
        .map(|i| Packet::data(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
        .collect();

    let flit_mean = |packets: &[Packet]| {
        let mut net = Network::new(mesh(), NocConfig::default());
        for _ in 0..4 {
            for p in packets {
                net.inject(*p);
            }
        }
        let done = net.run_until_idle(100_000).unwrap();
        done.iter().map(|d| d.latency()).sum::<u64>() as f64 / done.len() as f64
    };
    let pkt_mean = |packets: &[Packet]| {
        let mut noc = ContentionModel::new(mesh(), 1, 3);
        let mut total = 0u64;
        let mut count = 0u64;
        for _ in 0..4 {
            for p in packets {
                total += noc.send(p, Cycle::ZERO).raw();
                count += 1;
            }
        }
        total as f64 / count as f64
    };

    let flit_hot = flit_mean(&hotspot);
    let flit_cold = flit_mean(&disjoint);
    let pkt_hot = pkt_mean(&hotspot);
    let pkt_cold = pkt_mean(&disjoint);
    assert!(flit_hot > flit_cold, "flit model: hotspot must be slower");
    assert!(pkt_hot > pkt_cold, "packet model: hotspot must be slower");
}
