//! Property-based tests for the interconnect models.

use consim_noc::{ContentionModel, Mesh, Network, NocConfig, Packet};
use consim_types::{Cycle, NodeId};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = NodeId> {
    (0usize..16).prop_map(NodeId::new)
}

fn any_packet() -> impl Strategy<Value = Packet> {
    (any_node(), any_node(), any::<bool>()).prop_map(|(s, d, data)| {
        if data {
            Packet::data(s, d)
        } else {
            Packet::control(s, d)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected packet is eventually delivered, exactly once.
    #[test]
    fn flit_network_delivers_everything(
        packets in prop::collection::vec(any_packet(), 1..60),
    ) {
        let mut net = Network::new(Mesh::new(4, 4).unwrap(), NocConfig::default());
        for p in &packets {
            net.inject(*p);
        }
        let delivered = net.run_until_idle(200_000).unwrap();
        prop_assert_eq!(delivered.len(), packets.len());
        // Source/destination multiset matches.
        let mut want: Vec<_> = packets.iter().map(|p| (p.src, p.dst, p.class)).collect();
        let mut got: Vec<_> = delivered.iter().map(|d| (d.packet.src, d.packet.dst, d.packet.class)).collect();
        want.sort();
        got.sort();
        prop_assert_eq!(want, got);
    }

    /// Flit-level latency is never below the contention model's base
    /// (uncontended) latency minus slack, and both grow with distance.
    #[test]
    fn flit_latency_at_least_distance_bound(src in any_node(), dst in any_node()) {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut net = Network::new(mesh, NocConfig::default());
        net.inject(Packet::control(src, dst));
        let d = net.run_until_idle(10_000).unwrap();
        let hops = mesh.hops(src, dst) as u64;
        // Each hop needs at least a link traversal plus pipeline progress.
        prop_assert!(d[0].latency() >= hops);
    }

    /// The contention model's arrival is monotone in departure time:
    /// leaving later never means arriving earlier.
    #[test]
    fn contention_arrivals_monotone(
        packets in prop::collection::vec(any_packet(), 1..40),
        departs in prop::collection::vec(0u64..200, 1..40),
    ) {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut noc = ContentionModel::new(mesh, 1, 3);
        let n = packets.len().min(departs.len());
        let mut sorted: Vec<u64> = departs[..n].to_vec();
        sorted.sort_unstable();
        let mut last_same_route: std::collections::HashMap<(NodeId, NodeId), Cycle> =
            std::collections::HashMap::new();
        for (p, t) in packets[..n].iter().zip(sorted) {
            let arrival = noc.send(p, Cycle::new(t));
            prop_assert!(arrival.raw() >= t);
            // Same-route FIFO: a later departure on the identical route
            // cannot overtake (same links, same order).
            if let Some(prev) = last_same_route.get(&(p.src, p.dst)) {
                prop_assert!(arrival >= *prev);
            }
            last_same_route.insert((p.src, p.dst), arrival);
        }
    }

    /// Contended latency is never below the uncontended base latency.
    #[test]
    fn contention_never_beats_base(
        packets in prop::collection::vec(any_packet(), 1..60),
    ) {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut noc = ContentionModel::new(mesh, 1, 3);
        for p in &packets {
            let arrival = noc.send(p, Cycle::ZERO);
            let base = noc.base_latency(p.src, p.dst, p.flits());
            prop_assert!(arrival.raw() >= base, "{} < {}", arrival.raw(), base);
        }
    }
}
