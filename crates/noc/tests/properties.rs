//! Randomized property tests for the interconnect models, driven by seeded
//! `SimRng` streams so every run is reproducible.

use consim_noc::{ContentionModel, Mesh, Network, NocConfig, Packet};
use consim_types::{Cycle, NodeId, SimRng};

fn random_node(rng: &mut SimRng) -> NodeId {
    NodeId::new(rng.index(16))
}

fn random_packet(rng: &mut SimRng) -> Packet {
    let src = random_node(rng);
    let dst = random_node(rng);
    if rng.chance(0.5) {
        Packet::data(src, dst)
    } else {
        Packet::control(src, dst)
    }
}

/// Every injected packet is eventually delivered, exactly once.
#[test]
fn flit_network_delivers_everything() {
    let mut rng = SimRng::from_seed(0x0C01);
    for _case in 0..48 {
        let packets: Vec<Packet> = (0..1 + rng.index(60))
            .map(|_| random_packet(&mut rng))
            .collect();
        let mut net = Network::new(Mesh::new(4, 4).unwrap(), NocConfig::default());
        for p in &packets {
            net.inject(*p);
        }
        let delivered = net.run_until_idle(200_000).unwrap();
        assert_eq!(delivered.len(), packets.len());
        // Source/destination multiset matches.
        let mut want: Vec<_> = packets.iter().map(|p| (p.src, p.dst, p.class)).collect();
        let mut got: Vec<_> = delivered
            .iter()
            .map(|d| (d.packet.src, d.packet.dst, d.packet.class))
            .collect();
        want.sort();
        got.sort();
        assert_eq!(want, got);
    }
}

/// Flit-level latency is never below the hop distance.
#[test]
fn flit_latency_at_least_distance_bound() {
    let mut rng = SimRng::from_seed(0x0C02);
    for _case in 0..48 {
        let src = random_node(&mut rng);
        let dst = random_node(&mut rng);
        let mesh = Mesh::new(4, 4).unwrap();
        let mut net = Network::new(mesh, NocConfig::default());
        net.inject(Packet::control(src, dst));
        let d = net.run_until_idle(10_000).unwrap();
        let hops = mesh.hops(src, dst) as u64;
        // Each hop needs at least a link traversal plus pipeline progress.
        assert!(d[0].latency() >= hops);
    }
}

/// The contention model's arrival is monotone in departure time:
/// leaving later never means arriving earlier.
#[test]
fn contention_arrivals_monotone() {
    let mut rng = SimRng::from_seed(0x0C03);
    for _case in 0..48 {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut noc = ContentionModel::new(mesh, 1, 3);
        let n = 1 + rng.index(40);
        let packets: Vec<Packet> = (0..n).map(|_| random_packet(&mut rng)).collect();
        let mut departs: Vec<u64> = (0..n).map(|_| rng.below(200)).collect();
        departs.sort_unstable();
        let mut last_same_route: std::collections::HashMap<(NodeId, NodeId), Cycle> =
            std::collections::HashMap::new();
        for (p, t) in packets.iter().zip(departs) {
            let arrival = noc.send(p, Cycle::new(t));
            assert!(arrival.raw() >= t);
            // Same-route FIFO: a later departure on the identical route
            // cannot overtake (same links, same order).
            if let Some(prev) = last_same_route.get(&(p.src, p.dst)) {
                assert!(arrival >= *prev);
            }
            last_same_route.insert((p.src, p.dst), arrival);
        }
    }
}

/// Contended latency is never below the uncontended base latency.
#[test]
fn contention_never_beats_base() {
    let mut rng = SimRng::from_seed(0x0C04);
    for _case in 0..48 {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut noc = ContentionModel::new(mesh, 1, 3);
        for _ in 0..1 + rng.index(60) {
            let p = random_packet(&mut rng);
            let arrival = noc.send(&p, Cycle::ZERO);
            let base = noc.base_latency(p.src, p.dst, p.flits());
            assert!(arrival.raw() >= base, "{} < {}", arrival.raw(), base);
        }
    }
}
