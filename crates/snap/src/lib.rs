//! Hand-rolled, versioned, checksummed binary snapshot format for
//! deterministic checkpoint/restore of `consim` simulations.
//!
//! A snapshot is a stream of named *sections*:
//!
//! ```text
//! +--------+---------+   +----------+------+-------------+---------+----------+
//! | "CSNP" | version |   | name_len | name | payload_len | payload | checksum |
//! +--------+---------+   +----------+------+-------------+---------+----------+
//!   4 bytes  u32 LE        u32 LE    utf-8    u64 LE       bytes     u64 LE
//!                          \______________ repeated per section ______________/
//! ```
//!
//! Every multi-byte integer is little-endian. The checksum is FNV-1a over the
//! payload bytes and is validated *before* any payload byte is parsed, so a
//! single flipped bit anywhere in a section surfaces as
//! [`SnapshotErrorKind::Checksum`] rather than a garbled parse. Sections are
//! read strictly in the order they were written: readers ask for a section
//! *by name* and a mismatch is a [`SnapshotErrorKind::Corrupt`] error, which
//! catches files produced by a different simulator layout.
//!
//! State is captured through the [`Snapshot`] trait: `save` appends to an
//! in-memory [`SectionBuf`] and is infallible; `restore` reads from a
//! [`SectionReader`] *in place*, so the caller first rebuilds the object's
//! structure from configuration and then overlays the dynamic state. That
//! split keeps every shape check (set counts, way counts, thread counts) in
//! one place — the restoring type — and makes "resume = construct + restore"
//! the only code path.
//!
//! # Examples
//!
//! ```
//! use consim_snap::{SectionBuf, SnapReader, SnapWriter, Snapshot};
//! use consim_types::SimRng;
//!
//! let mut rng = SimRng::from_seed(7);
//! rng.next_u64();
//!
//! let mut buf = SectionBuf::new();
//! rng.save(&mut buf);
//! let mut out = Vec::new();
//! let mut writer = SnapWriter::new(&mut out).unwrap();
//! writer.section("rng", &buf).unwrap();
//!
//! let mut reader = SnapReader::from_reader(&out[..]).unwrap();
//! let mut restored = SimRng::from_seed(0);
//! restored.restore(&mut reader.section("rng").unwrap()).unwrap();
//! assert_eq!(restored.next_u64(), rng.next_u64());
//! ```

use std::io::{Read, Write};

use consim_types::cycles::LatencyAccumulator;
use consim_types::{Cycle, SimError, SimRng, SnapshotErrorKind};

/// File magic: the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"CSNP";

/// Current format version. Bump on any incompatible layout change.
///
/// Version history:
/// * 1 — per-set AoS cache sections (`Option<CacheLine>` per way).
/// * 2 — flat SoA cache planes (tag/state/recency vectors per cache) and
///   batched generator cursors; v1 files are rejected as
///   [`SnapshotErrorKind::BadVersion`].
/// * 3 — dynamic-QoS repartitioning: the engine section gains the next
///   repartition boundary and the controller's state (way quotas, EWMA
///   slowdowns, per-boundary counter baselines); older versions are
///   rejected as [`SnapshotErrorKind::BadVersion`].
/// * 4 — VM lifecycle churn: the config section gains the machine's churn
///   policy and per-profile load-phase schedules, and the engine section
///   gains the next churn boundary plus the churn runtime state (active
///   flags, arrival ordinals, bindings, statistics); older versions are
///   rejected as [`SnapshotErrorKind::BadVersion`].
pub const VERSION: u32 = 4;

/// FNV-1a hash of a byte slice — the section checksum function.
///
/// Also used by callers that need a cheap stable digest of snapshot bytes
/// (e.g. journal file names).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(msg: impl Into<String>) -> SimError {
    SimError::snapshot(SnapshotErrorKind::Corrupt, msg)
}

fn truncated(msg: impl Into<String>) -> SimError {
    SimError::snapshot(SnapshotErrorKind::Truncated, msg)
}

/// A type whose dynamic state can be checkpointed and restored in place.
///
/// `save` is infallible because it only appends to an in-memory buffer;
/// `restore` validates shape against `self` (constructed from configuration)
/// and reports mismatches as [`SimError::Snapshot`].
pub trait Snapshot {
    /// Appends this object's dynamic state to `w`.
    fn save(&self, w: &mut SectionBuf);

    /// Overwrites this object's dynamic state from `r`.
    ///
    /// `self` must already have the structure implied by the simulation
    /// configuration; only mutable state is read back.
    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError>;
}

/// Growable in-memory payload buffer with infallible little-endian encoders.
#[derive(Debug, Default, Clone)]
pub struct SectionBuf {
    bytes: Vec<u8>,
}

impl SectionBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (encoded as `u64`).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` via its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.bytes.extend_from_slice(v.as_bytes());
    }

    /// Appends an optional `u64` as a presence byte plus value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a length-prefixed slice of `u64`s.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed slice of raw bytes (e.g. a state plane).
    pub fn put_u8_slice(&mut self, vs: &[u8]) {
        self.put_usize(vs.len());
        self.bytes.extend_from_slice(vs);
    }
}

/// Bounds-checked little-endian decoders over one section's payload.
///
/// Every read that runs past the payload end is a
/// [`SnapshotErrorKind::Truncated`] error naming the section.
#[derive(Debug)]
pub struct SectionReader<'a> {
    name: &'a str,
    data: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// Wraps a raw payload; used by tests and by [`SnapReader::section`].
    pub fn new(name: &'a str, data: &'a [u8]) -> Self {
        Self { name, data, pos: 0 }
    }

    /// The section name, for error context.
    pub fn name(&self) -> &str {
        self.name
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        if self.remaining() < n {
            return Err(truncated(format!(
                "section '{}': wanted {n} bytes, {} left",
                self.name,
                self.remaining()
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, SimError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| {
            corrupt(format!(
                "section '{}': length {v} exceeds address space",
                self.name
            ))
        })
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SimError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a boolean; any byte other than 0/1 is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, SimError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!(
                "section '{}': invalid boolean byte {b}",
                self.name
            ))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SimError> {
        let len = self.get_u32()? as usize;
        let name = self.name;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(format!("section '{name}': invalid utf-8 string")))
    }

    /// Reads an optional `u64` (presence byte plus value).
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SimError> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed vector of `u64`s.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, SimError> {
        let len = self.get_usize()?;
        let mut out = Vec::with_capacity(len.min(self.remaining() / 8 + 1));
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed slice of raw bytes into `dst`; the stored
    /// length must equal `dst.len()` exactly (`what` names the mismatch).
    pub fn get_u8_slice_into(&mut self, dst: &mut [u8], what: &str) -> Result<(), SimError> {
        self.expect_len(dst.len(), what)?;
        let bytes = self.take(dst.len())?;
        dst.copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a length prefix and requires it to equal `expected`.
    ///
    /// Used by restore impls to check that serialized shape matches the
    /// freshly constructed object before overwriting element state.
    pub fn expect_len(&mut self, expected: usize, what: &str) -> Result<(), SimError> {
        let stored = self.get_usize()?;
        if stored != expected {
            return Err(corrupt(format!(
                "section '{}': snapshot has {stored} {what}, configuration builds {expected}",
                self.name
            )));
        }
        Ok(())
    }
}

/// Writes a slice of snapshot-able items with a length prefix.
pub fn save_items<T: Snapshot>(w: &mut SectionBuf, items: &[T]) {
    w.put_usize(items.len());
    for item in items {
        item.save(w);
    }
}

/// Restores a slice of snapshot-able items in place; the stored length must
/// match `items.len()` exactly.
pub fn restore_items<T: Snapshot>(
    r: &mut SectionReader<'_>,
    items: &mut [T],
) -> Result<(), SimError> {
    r.expect_len(items.len(), "items")?;
    for item in items.iter_mut() {
        item.restore(r)?;
    }
    Ok(())
}

/// Streams sections to a [`Write`] sink, emitting the header up front.
#[derive(Debug)]
pub struct SnapWriter<W: Write> {
    inner: W,
}

impl<W: Write> SnapWriter<W> {
    /// Writes the snapshot header and returns the section writer.
    pub fn new(mut inner: W) -> Result<Self, SimError> {
        let mut header = Vec::with_capacity(8);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        inner
            .write_all(&header)
            .map_err(|e| SimError::snapshot(SnapshotErrorKind::Io, e.to_string()))?;
        Ok(Self { inner })
    }

    /// Appends one named, checksummed section.
    pub fn section(&mut self, name: &str, buf: &SectionBuf) -> Result<(), SimError> {
        let payload = buf.as_bytes();
        let mut frame = Vec::with_capacity(4 + name.len() + 8 + payload.len() + 8);
        frame.extend_from_slice(&(name.len() as u32).to_le_bytes());
        frame.extend_from_slice(name.as_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        self.inner
            .write_all(&frame)
            .map_err(|e| SimError::snapshot(SnapshotErrorKind::Io, e.to_string()))?;
        Ok(())
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> Result<W, SimError> {
        self.inner
            .flush()
            .map_err(|e| SimError::snapshot(SnapshotErrorKind::Io, e.to_string()))?;
        Ok(self.inner)
    }
}

/// Reads a snapshot stream, serving sections strictly in written order.
#[derive(Debug)]
pub struct SnapReader {
    data: Vec<u8>,
    pos: usize,
}

impl SnapReader {
    /// Slurps the whole stream and validates the header.
    pub fn from_reader<R: Read>(mut reader: R) -> Result<Self, SimError> {
        let mut data = Vec::new();
        reader
            .read_to_end(&mut data)
            .map_err(|e| SimError::snapshot(SnapshotErrorKind::Io, e.to_string()))?;
        Self::from_bytes(data)
    }

    /// Validates the header of an in-memory snapshot.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, SimError> {
        if data.len() < 4 {
            return Err(truncated("file shorter than magic"));
        }
        if data[..4] != MAGIC {
            return Err(SimError::snapshot(
                SnapshotErrorKind::BadMagic,
                "file does not start with CSNP",
            ));
        }
        if data.len() < 8 {
            return Err(truncated("file ends inside version field"));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(SimError::snapshot(
                SnapshotErrorKind::BadVersion,
                format!("snapshot version {version}, this build reads {VERSION}"),
            ));
        }
        Ok(Self { data, pos: 8 })
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], SimError> {
        if self.data.len() - self.pos < n {
            return Err(truncated(format!("file ends inside {what}")));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads the next section, requiring its name to be `expected`.
    ///
    /// The checksum is validated over the whole payload before a
    /// [`SectionReader`] is handed out, so parse code never sees bit-rotted
    /// bytes.
    pub fn section(&mut self, expected: &str) -> Result<SectionReader<'_>, SimError> {
        let name_len =
            u32::from_le_bytes(self.take(4, "section name length")?.try_into().unwrap()) as usize;
        let name_start = self.pos;
        self.take(name_len, "section name")?;
        let payload_len =
            u64::from_le_bytes(self.take(8, "section payload length")?.try_into().unwrap());
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| corrupt("section payload length exceeds address space"))?;
        let payload_start = self.pos;
        self.take(payload_len, "section payload")?;
        let stored_sum = u64::from_le_bytes(self.take(8, "section checksum")?.try_into().unwrap());

        let name = std::str::from_utf8(&self.data[name_start..name_start + name_len])
            .map_err(|_| corrupt("section name is not valid utf-8"))?;
        if name != expected {
            return Err(corrupt(format!(
                "expected section '{expected}', found '{name}'"
            )));
        }
        let payload = &self.data[payload_start..payload_start + payload_len];
        if fnv1a(payload) != stored_sum {
            return Err(SimError::snapshot(
                SnapshotErrorKind::Checksum,
                format!("section '{expected}' failed checksum"),
            ));
        }
        Ok(SectionReader::new(
            std::str::from_utf8(&self.data[name_start..name_start + name_len]).unwrap(),
            payload,
        ))
    }

    /// Requires that every byte of the stream has been consumed.
    pub fn expect_end(&self) -> Result<(), SimError> {
        if self.pos != self.data.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after final section",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Snapshot for SimRng {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.seed());
        for word in self.state() {
            w.put_u64(word);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        let seed = r.get_u64()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        *self = SimRng::restore(seed, state);
        Ok(())
    }
}

impl Snapshot for Cycle {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.raw());
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.0 = r.get_u64()?;
        Ok(())
    }
}

impl Snapshot for LatencyAccumulator {
    fn save(&self, w: &mut SectionBuf) {
        let (count, total, max, min) = self.raw_parts();
        w.put_u64(count);
        w.put_u64(total);
        w.put_u64(max);
        w.put_u64(min);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        let count = r.get_u64()?;
        let total = r.get_u64()?;
        let max = r.get_u64()?;
        let min = r.get_u64()?;
        *self = LatencyAccumulator::from_raw_parts(count, total, max, min);
        Ok(())
    }
}

impl Snapshot for u64 {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(*self);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        *self = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_snapshot() -> Vec<u8> {
        let mut a = SectionBuf::new();
        a.put_u64(0xdead_beef);
        a.put_str("hello");
        a.put_bool(true);
        a.put_opt_u64(Some(42));
        a.put_f64(1.5);
        let mut b = SectionBuf::new();
        b.put_u64_slice(&[1, 2, 3]);
        b.put_u8(9);

        let mut out = Vec::new();
        let mut w = SnapWriter::new(&mut out).unwrap();
        w.section("alpha", &a).unwrap();
        w.section("beta", &b).unwrap();
        w.finish().unwrap();
        out
    }

    #[test]
    fn round_trips_all_primitives() {
        let bytes = two_section_snapshot();
        let mut r = SnapReader::from_bytes(bytes).unwrap();
        let mut a = r.section("alpha").unwrap();
        assert_eq!(a.get_u64().unwrap(), 0xdead_beef);
        assert_eq!(a.get_str().unwrap(), "hello");
        assert!(a.get_bool().unwrap());
        assert_eq!(a.get_opt_u64().unwrap(), Some(42));
        assert_eq!(a.get_f64().unwrap(), 1.5);
        assert_eq!(a.remaining(), 0);
        let mut b = r.section("beta").unwrap();
        assert_eq!(b.get_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(b.get_u8().unwrap(), 9);
        r.expect_end().unwrap();
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = two_section_snapshot();
        bytes[0] = b'X';
        let err = SnapReader::from_bytes(bytes).unwrap_err();
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::BadMagic));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = two_section_snapshot();
        bytes[4] = 0xff;
        let err = SnapReader::from_bytes(bytes).unwrap_err();
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::BadVersion));
    }

    #[test]
    fn version_one_files_are_rejected() {
        // v1 predates the SoA cache planes; reading one must be a typed
        // error, never a garbled parse.
        let mut bytes = two_section_snapshot();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let err = SnapReader::from_bytes(bytes).unwrap_err();
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::BadVersion));
    }

    #[test]
    fn u8_slice_round_trips_and_checks_shape() {
        let mut buf = SectionBuf::new();
        buf.put_u8_slice(&[3, 1, 0, 2]);
        let mut r = SectionReader::new("planes", buf.as_bytes());
        let mut back = [0u8; 4];
        r.get_u8_slice_into(&mut back, "state plane").unwrap();
        assert_eq!(back, [3, 1, 0, 2]);

        let mut r = SectionReader::new("planes", buf.as_bytes());
        let mut short = [0u8; 3];
        let err = r.get_u8_slice_into(&mut short, "state plane").unwrap_err();
        assert!(err.to_string().contains("state plane"), "{err}");
    }

    #[test]
    fn truncation_anywhere_is_typed_never_a_panic() {
        let bytes = two_section_snapshot();
        for cut in 0..bytes.len() {
            let result = SnapReader::from_bytes(bytes[..cut].to_vec()).and_then(|mut r| {
                let mut a = r.section("alpha")?;
                a.get_u64()?;
                a.get_str()?;
                r.section("beta")?;
                Ok(())
            });
            let err = result.expect_err("truncated snapshot must not parse");
            assert!(
                matches!(
                    err.snapshot_kind(),
                    Some(SnapshotErrorKind::Truncated | SnapshotErrorKind::BadMagic)
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_in_each_section_fails_checksum() {
        let clean = two_section_snapshot();
        // Locate each section's payload region by re-parsing the frame
        // layout: header(8) name_len(4) name payload_len(8) payload sum(8).
        let mut pos = 8;
        let mut payload_spans = Vec::new();
        while pos < clean.len() {
            let name_len = u32::from_le_bytes(clean[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4 + name_len;
            let payload_len = u64::from_le_bytes(clean[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            payload_spans.push((pos, payload_len));
            pos += payload_len + 8;
        }
        assert_eq!(payload_spans.len(), 2);
        for (section_index, (start, len)) in payload_spans.into_iter().enumerate() {
            for offset in [0, len / 2, len - 1] {
                let mut bytes = clean.clone();
                bytes[start + offset] ^= 0x01;
                let mut r = SnapReader::from_bytes(bytes).unwrap();
                let result = (|| {
                    r.section("alpha")?;
                    r.section("beta")?;
                    Ok(())
                })();
                let err: SimError = result.expect_err("flipped byte must fail");
                assert_eq!(
                    err.snapshot_kind(),
                    Some(SnapshotErrorKind::Checksum),
                    "section {section_index} offset {offset}"
                );
            }
        }
    }

    #[test]
    fn wrong_section_name_is_corrupt() {
        let bytes = two_section_snapshot();
        let mut r = SnapReader::from_bytes(bytes).unwrap();
        let err = r.section("gamma").unwrap_err();
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
        assert!(err.to_string().contains("gamma"));
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn invalid_bool_byte_is_corrupt() {
        let mut r = SectionReader::new("t", &[7]);
        let err = r.get_bool().unwrap_err();
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = two_section_snapshot();
        bytes.push(0);
        let mut r = SnapReader::from_bytes(bytes).unwrap();
        r.section("alpha").unwrap();
        r.section("beta").unwrap();
        let err = r.expect_end().unwrap_err();
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
    }

    #[test]
    fn rng_snapshot_continues_stream_exactly() {
        let mut rng = SimRng::from_seed(99);
        for _ in 0..23 {
            rng.next_u64();
        }
        let mut buf = SectionBuf::new();
        rng.save(&mut buf);
        let mut restored = SimRng::from_seed(1);
        restored
            .restore(&mut SectionReader::new("rng", buf.as_bytes()))
            .unwrap();
        for _ in 0..64 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
        // Derived streams must match too (seed word is preserved).
        assert_eq!(
            restored.derive("child").next_u64(),
            rng.derive("child").next_u64()
        );
    }

    #[test]
    fn cycle_and_accumulator_round_trip() {
        let mut buf = SectionBuf::new();
        Cycle::new(12345).save(&mut buf);
        let mut acc = LatencyAccumulator::new();
        acc.record(3);
        acc.record(17);
        acc.save(&mut buf);
        LatencyAccumulator::new().save(&mut buf);

        let mut r = SectionReader::new("t", buf.as_bytes());
        let mut c = Cycle::ZERO;
        c.restore(&mut r).unwrap();
        assert_eq!(c, Cycle::new(12345));
        let mut back = LatencyAccumulator::new();
        back.restore(&mut r).unwrap();
        assert_eq!(back, acc);
        let mut empty = LatencyAccumulator::default();
        empty.restore(&mut r).unwrap();
        assert_eq!(empty, LatencyAccumulator::new());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn item_slices_enforce_length() {
        let mut buf = SectionBuf::new();
        save_items(&mut buf, &[1u64, 2, 3]);
        let mut short = [0u64; 2];
        let err =
            restore_items(&mut SectionReader::new("t", buf.as_bytes()), &mut short).unwrap_err();
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
        let mut exact = [0u64; 3];
        restore_items(&mut SectionReader::new("t", buf.as_bytes()), &mut exact).unwrap();
        assert_eq!(exact, [1, 2, 3]);
    }
}
