//! Deterministic, stream-splittable random number generation.
//!
//! Every stochastic component (workload generators, random scheduling,
//! replacement tie-breaks, statistical-simulation perturbation) draws from a
//! [`SimRng`]. A run is fully reproducible from its root seed; independent
//! components get *derived* streams so that adding a consumer does not shift
//! the values any other consumer sees.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna), seeded
//! through SplitMix64 — the textbook pairing. Keeping the implementation local
//! (~30 lines) means the simulator builds with no external crates and the
//! streams are bit-stable across toolchain upgrades.

/// A deterministic random stream.
///
/// Wraps a xoshiro256++ state and adds [`SimRng::derive`], which forks an
/// independent stream identified by a string label — the label is hashed into
/// the child seed so streams are stable across code reordering.
///
/// # Examples
///
/// ```
/// use consim_types::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42).derive("workload/tpcw/thread0");
/// let mut b = SimRng::from_seed(42).derive("workload/tpcw/thread0");
/// assert_eq!(a.next_u64(), b.next_u64()); // same label, same stream
///
/// let mut c = SimRng::from_seed(42).derive("workload/tpcw/thread1");
/// assert_ne!(a.next_u64(), c.next_u64()); // overwhelmingly likely
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a root stream from a seed.
    pub fn from_seed(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state with SplitMix64, as
        // recommended by the xoshiro authors. The expansion walks the
        // SplitMix64 sequence so no two state words coincide.
        let mut z = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            z = z.wrapping_add(0x9e3779b97f4a7c15);
            *word = splitmix64(z);
        }
        Self { seed, state }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw xoshiro256++ state words, for checkpointing. Restoring the
    /// same `(seed, state)` pair with [`SimRng::restore`] yields a stream
    /// that continues exactly where this one left off.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Reconstructs a stream from a previously captured `(seed, state)`
    /// pair (see [`SimRng::seed`] and [`SimRng::state`]). The seed is kept
    /// so `derive` on a restored stream matches `derive` on the original.
    pub fn restore(seed: u64, state: [u64; 4]) -> Self {
        Self { seed, state }
    }

    /// Forks an independent child stream identified by `label`.
    ///
    /// Children of the same parent with the same label are identical;
    /// different labels give (with overwhelming probability) unrelated
    /// streams. Deriving does not consume randomness from the parent.
    pub fn derive(&self, label: &str) -> SimRng {
        let child_seed = splitmix64(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::from_seed(child_seed)
    }

    /// Forks a child stream identified by `label` plus integer `parts`.
    ///
    /// Equivalent in spirit to `derive(&format!("{label}/{a}/{b}"))` but
    /// allocation-free: the label is hashed once and each part is folded in
    /// with a SplitMix64 round. Hot construction paths (per-core, per-thread,
    /// per-epoch streams) use this instead of formatting strings.
    pub fn derive_parts(&self, label: &str, parts: &[u64]) -> SimRng {
        let mut h = fnv1a(label.as_bytes());
        for &p in parts {
            h = splitmix64(h ^ p);
        }
        SimRng::from_seed(splitmix64(self.seed ^ h))
    }

    /// Next raw 64-bit value (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased, and in the
    /// common case a single multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut m = (self.next_u64() as u128) * (bound as u128);
        if (m as u64) < bound {
            // Rejection zone: only entered for small fractions of the range.
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index(0) is meaningless");
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Geometric-ish positive count with the given mean (at least 1).
    ///
    /// Used for "instructions between memory references" gaps.
    #[inline]
    pub fn positive_with_mean(&mut self, mean: u64) -> u64 {
        if mean <= 1 {
            return 1;
        }
        // Draw uniformly in [1, 2*mean-1]; mean is `mean`, cheap and bounded.
        1 + self.below(2 * mean - 1)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// FNV-1a hash used to turn stream labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// SplitMix64 finalizer: decorrelates derived seeds and expands state.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::from_seed(123);
        let mut x = root.derive("a");
        let mut y = root.derive("a");
        let mut z = root.derive("b");
        assert_eq!(x.next_u64(), y.next_u64());
        assert_ne!(y.next_u64(), z.next_u64());
    }

    #[test]
    fn derive_does_not_consume_parent() {
        let mut a = SimRng::from_seed(5);
        let mut b = SimRng::from_seed(5);
        let _ = b.derive("child");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_parts_distinguishes_parts_and_labels() {
        let root = SimRng::from_seed(99);
        let mut a = root.derive_parts("core/gaps", &[0]);
        let mut b = root.derive_parts("core/gaps", &[0]);
        let mut c = root.derive_parts("core/gaps", &[1]);
        let mut d = root.derive_parts("other", &[0]);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn derive_parts_order_matters() {
        let root = SimRng::from_seed(321);
        let mut ab = root.derive_parts("x", &[1, 2]);
        let mut ba = root.derive_parts("x", &[2, 1]);
        assert_ne!(ab.next_u64(), ba.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::from_seed(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SimRng::from_seed(11);
        let mut counts = [0u64; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 0.125).abs() < 0.01, "biased bucket: {p}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::from_seed(1).below(0);
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = SimRng::from_seed(2);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn positive_with_mean_bounds_and_mean() {
        let mut rng = SimRng::from_seed(4);
        let mean = 8u64;
        let n = 20_000;
        let mut total = 0u64;
        for _ in 0..n {
            let v = rng.positive_with_mean(mean);
            assert!((1..2 * mean).contains(&v));
            total += v;
        }
        let empirical = total as f64 / n as f64;
        assert!(
            (empirical - mean as f64).abs() < 0.2,
            "mean drifted: {empirical}"
        );
    }

    #[test]
    fn positive_with_mean_one_is_constant() {
        let mut rng = SimRng::from_seed(5);
        for _ in 0..10 {
            assert_eq!(rng.positive_with_mean(1), 1);
        }
    }

    #[test]
    fn restore_continues_stream_and_preserves_derive() {
        let mut original = SimRng::from_seed(40);
        for _ in 0..17 {
            original.next_u64();
        }
        let mut restored = SimRng::restore(original.seed(), original.state());
        let mut derived_a = original.derive("child");
        let mut derived_b = restored.derive("child");
        assert_eq!(derived_a.next_u64(), derived_b.next_u64());
        for _ in 0..32 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::from_seed(6);
        let mut v: Vec<usize> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = SimRng::from_seed(7);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
