//! Physical addresses and cache-block addresses.
//!
//! The simulator keeps every virtual machine in a disjoint slice of the
//! physical address space: the top bits of an [`Address`] carry the VM id, the
//! low bits the offset inside the VM's memory. This mirrors the paper's
//! methodology ("each workload is statically assigned its own portion of
//! physical memory ... no data is shared across workloads").
//!
//! Caches and the coherence protocol operate on [`BlockAddr`]s — addresses
//! rounded down to the 64-byte cache-line granularity of the paper's machine.

use crate::ids::VmId;
use std::fmt;

/// Cache-line size used throughout the paper and the simulator (bytes).
pub const CACHE_LINE_BYTES: usize = 64;

/// log2 of [`CACHE_LINE_BYTES`].
pub const CACHE_LINE_SHIFT: u32 = CACHE_LINE_BYTES.trailing_zeros();

/// Number of low bits reserved for the per-VM offset. 40 bits = 1 TiB per VM,
/// far more than any workload footprint in the study.
pub const VM_OFFSET_BITS: u32 = 40;

/// A byte-granular physical address, tagged with the owning VM in its top
/// bits.
///
/// # Examples
///
/// ```
/// use consim_types::addr::Address;
/// use consim_types::ids::VmId;
///
/// let a = Address::in_vm(VmId::new(3), 0x1234);
/// assert_eq!(a.vm(), VmId::new(3));
/// assert_eq!(a.offset(), 0x1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// Builds an address from a VM id and a byte offset within the VM's
    /// private memory.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in [`VM_OFFSET_BITS`] bits.
    #[inline]
    pub fn in_vm(vm: VmId, offset: u64) -> Self {
        assert!(
            offset < (1 << VM_OFFSET_BITS),
            "offset {offset:#x} exceeds the per-VM address space"
        );
        Self(((vm.index() as u64) << VM_OFFSET_BITS) | offset)
    }

    /// The raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The VM that owns this address.
    #[inline]
    pub fn vm(self) -> VmId {
        VmId::new((self.0 >> VM_OFFSET_BITS) as usize)
    }

    /// The byte offset within the owning VM's memory.
    #[inline]
    pub const fn offset(self) -> u64 {
        self.0 & ((1 << VM_OFFSET_BITS) - 1)
    }

    /// The cache block containing this address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> CACHE_LINE_SHIFT)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.vm(), self.offset())
    }
}

/// A cache-block (64 B line) address: an [`Address`] shifted right by
/// [`CACHE_LINE_SHIFT`].
///
/// All cache tags, directory entries and coherence messages are keyed by
/// `BlockAddr`.
///
/// # Examples
///
/// ```
/// use consim_types::addr::{Address, BlockAddr, CACHE_LINE_BYTES};
/// use consim_types::ids::VmId;
///
/// let a = Address::in_vm(VmId::new(0), 130);
/// assert_eq!(a.block(), BlockAddr::new(2));
/// assert_eq!(a.block().base_address().offset(), 2 * CACHE_LINE_BYTES as u64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    #[inline]
    pub const fn new(block_number: u64) -> Self {
        Self(block_number)
    }

    /// The raw block number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of the block.
    #[inline]
    pub const fn base_address(self) -> Address {
        Address(self.0 << CACHE_LINE_SHIFT)
    }

    /// The VM that owns this block.
    #[inline]
    pub fn vm(self) -> VmId {
        self.base_address().vm()
    }

    /// Builds the `index`-th block of VM `vm`'s address space.
    #[inline]
    pub fn in_vm(vm: VmId, block_index: u64) -> Self {
        Address::in_vm(vm, block_index << CACHE_LINE_SHIFT).block()
    }

    /// The block index within the owning VM (i.e. offset / 64).
    #[inline]
    pub const fn vm_block_index(self) -> u64 {
        self.base_address().offset() >> CACHE_LINE_SHIFT
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk[{}]", self.base_address())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_and_offset_roundtrip() {
        for vm in [0usize, 1, 7, 15] {
            for off in [0u64, 63, 64, 4096, (1 << 30) + 17] {
                let a = Address::in_vm(VmId::new(vm), off);
                assert_eq!(a.vm().index(), vm);
                assert_eq!(a.offset(), off);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the per-VM address space")]
    fn oversized_offset_panics() {
        let _ = Address::in_vm(VmId::new(0), 1 << VM_OFFSET_BITS);
    }

    #[test]
    fn addresses_in_same_line_share_block() {
        let vm = VmId::new(2);
        let a = Address::in_vm(vm, 128);
        let b = Address::in_vm(vm, 191);
        let c = Address::in_vm(vm, 192);
        assert_eq!(a.block(), b.block());
        assert_ne!(b.block(), c.block());
    }

    #[test]
    fn blocks_from_distinct_vms_never_collide() {
        let a = BlockAddr::in_vm(VmId::new(0), 42);
        let b = BlockAddr::in_vm(VmId::new(1), 42);
        assert_ne!(a, b);
        assert_eq!(a.vm_block_index(), b.vm_block_index());
        assert_eq!(a.vm().index(), 0);
        assert_eq!(b.vm().index(), 1);
    }

    #[test]
    fn block_base_address_is_line_aligned() {
        let blk = BlockAddr::in_vm(VmId::new(3), 99);
        assert_eq!(blk.base_address().raw() % CACHE_LINE_BYTES as u64, 0);
        assert_eq!(blk.base_address().block(), blk);
    }

    #[test]
    fn display_formats() {
        let a = Address::in_vm(VmId::new(1), 0x40);
        assert_eq!(a.to_string(), "vm1:0x40");
        assert_eq!(a.block().to_string(), "blk[vm1:0x40]");
    }

    #[test]
    fn line_constants_agree() {
        assert_eq!(1usize << CACHE_LINE_SHIFT, CACHE_LINE_BYTES);
    }
}
