//! Shared foundation types for the `consim` CMP simulator.
//!
//! This crate defines the vocabulary the rest of the workspace speaks:
//!
//! * strongly-typed identifiers ([`CoreId`], [`VmId`], [`ThreadId`],
//!   [`BankId`], [`NodeId`], [`MemCtrlId`]) — see [`ids`];
//! * physical addresses and cache-block addresses — see [`addr`];
//! * simulation-time arithmetic — see [`cycles`];
//! * the machine configuration from the paper's Table III, with a builder —
//!   see [`config`];
//! * the workspace-wide error type — see [`error`];
//! * a fast non-cryptographic hasher for simulator-internal maps — see
//!   [`hash`];
//! * deterministic, stream-splittable random number generation — see [`rng`].
//!
//! # Examples
//!
//! ```
//! use consim_types::config::{MachineConfig, SharingDegree};
//!
//! let machine = MachineConfig::paper_default();
//! assert_eq!(machine.num_cores, 16);
//! assert_eq!(machine.llc.total_bytes, 16 << 20);
//! let shared4 = machine.with_sharing(SharingDegree::SharedBy(4));
//! assert_eq!(shared4.llc_banks(), 4);
//! ```

pub mod addr;
pub mod config;
pub mod cycles;
pub mod error;
pub mod hash;
pub mod ids;
pub mod rng;

pub use addr::{Address, BlockAddr, CACHE_LINE_BYTES};
pub use config::{
    CacheGeometry, ChurnPolicy, DynamicPolicy, LlcPartitioning, MachineConfig, SharingDegree,
};
pub use cycles::Cycle;
pub use error::{SimError, SnapshotErrorKind};
pub use hash::{FastHashMap, FastHashSet};
pub use ids::{BankId, CoreId, GlobalThreadId, MemCtrlId, NodeId, ThreadId, VmId};
pub use rng::SimRng;
