//! Machine configuration (the paper's Table III) and cache geometry.
//!
//! [`MachineConfig::paper_default`] builds the exact 16-core machine used in
//! the study; [`MachineConfigBuilder`] lets callers explore other designs
//! (larger meshes, different LLC sizes, different latencies) while keeping
//! the invariants checked in one place.

use crate::addr::CACHE_LINE_BYTES;
use crate::error::SimError;
use std::fmt;

/// How many cores share each last-level-cache bank.
///
/// The paper's continuum from private to fully shared:
/// `Private` = 16 x 1 MB, `SharedBy(2)` = 8 x 2 MB, `SharedBy(4)` = 4 x 4 MB,
/// `SharedBy(8)` = 2 x 8 MB, `FullyShared` = 1 x 16 MB (for the 16 MB / 16
/// core default machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingDegree {
    /// Each core has an exclusive LLC partition.
    Private,
    /// `n` cores share each LLC bank; `n` must divide the core count.
    SharedBy(usize),
    /// All cores share a single monolithic LLC.
    FullyShared,
}

impl SharingDegree {
    /// Number of cores sharing one bank, given the machine's core count.
    ///
    /// # Examples
    ///
    /// ```
    /// use consim_types::config::SharingDegree;
    /// assert_eq!(SharingDegree::Private.cores_per_bank(16), 1);
    /// assert_eq!(SharingDegree::SharedBy(4).cores_per_bank(16), 4);
    /// assert_eq!(SharingDegree::FullyShared.cores_per_bank(16), 16);
    /// ```
    pub fn cores_per_bank(self, num_cores: usize) -> usize {
        match self {
            SharingDegree::Private => 1,
            SharingDegree::SharedBy(n) => n,
            SharingDegree::FullyShared => num_cores,
        }
    }

    /// Number of LLC banks, given the machine's core count.
    pub fn num_banks(self, num_cores: usize) -> usize {
        num_cores / self.cores_per_bank(num_cores)
    }

    /// Canonical label used in reports ("private", "shared-4", "shared").
    pub fn label(self) -> String {
        match self {
            SharingDegree::Private => "private".to_string(),
            SharingDegree::SharedBy(n) => format!("shared-{n}"),
            SharingDegree::FullyShared => "shared".to_string(),
        }
    }

    /// All degrees the paper evaluates on a 16-core machine, from the most
    /// partitioned to the most shared.
    pub fn paper_sweep() -> Vec<SharingDegree> {
        vec![
            SharingDegree::Private,
            SharingDegree::SharedBy(2),
            SharingDegree::SharedBy(4),
            SharingDegree::SharedBy(8),
            SharingDegree::FullyShared,
        ]
    }
}

impl fmt::Display for SharingDegree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Parameters of the dynamic (LFOC+-style) LLC repartitioning controller.
///
/// Every field is an integer in fixed-point units (permille weights,
/// milli-slowdowns) so controller decisions are exact, platform-independent,
/// bit-identical across checkpoint/resume, and re-computable by the
/// differential oracle from the same inputs.
///
/// The controller runs at `epoch_interval`-cycle boundaries of the
/// measurement phase. Each epoch it classifies every VM from its epoch
/// deltas — *light* (few L1 misses per reference, or occupying less than
/// one way's worth of LLC capacity), *streaming* (misses mostly served by
/// memory: the cache is not helping), or *cache-sensitive* (the rest) —
/// and redistributes the ways above the per-VM `min_ways` floor across the
/// cache-sensitive VMs proportional to their EWMA slowdown (cycles per
/// reference versus the VM's own best epoch). Hysteresis: no rebalancing
/// while the max−min slowdown spread is within `deadband_milli`, and at
/// most `max_step` ways migrate per boundary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DynamicPolicy {
    /// Cycles between repartitioning decisions. Must be nonzero — a zero
    /// interval would make the epoch boundary degenerate (the controller
    /// would re-run before every access).
    pub epoch_interval: u64,
    /// Floor on the ways any VM may hold (≥ 1; a zero-way VM could never
    /// fill a line).
    pub min_ways: u8,
    /// Maximum number of ways migrated per decision (gradual rebalancing;
    /// displaced lines are evicted by natural replacement, not flushed).
    pub max_step: u8,
    /// EWMA weight of the newest slowdown sample, in permille (1..=1000).
    pub ewma_permille: u32,
    /// Dead-band: skip rebalancing while the max−min EWMA slowdown spread
    /// is at most this many milli-units (1000 = 1.0×).
    pub deadband_milli: u32,
    /// A VM whose epoch L1 misses per reference (permille) fall below this
    /// threshold is classified *light*.
    pub light_miss_permille: u32,
    /// A VM whose epoch memory fetches per L1 miss (permille) exceed this
    /// threshold is classified *streaming*.
    pub stream_memory_permille: u32,
}

impl Default for DynamicPolicy {
    /// A stable, paper-scale tuning: decide every 50k cycles, one way per
    /// step, 30% EWMA weight, 5% slowdown dead-band, light below 0.5%
    /// misses/ref, streaming above 70% memory-served misses.
    fn default() -> Self {
        Self {
            epoch_interval: 50_000,
            min_ways: 1,
            max_step: 1,
            ewma_permille: 300,
            deadband_milli: 50,
            light_miss_permille: 5,
            stream_memory_permille: 700,
        }
    }
}

impl DynamicPolicy {
    /// Validates the VM-count-independent parameter invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `epoch_interval`, `min_ways`,
    /// or `max_step` is zero, or if `ewma_permille` is outside `1..=1000`.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.epoch_interval == 0 {
            return Err(SimError::invalid_config(
                "dynamic repartitioning epoch_interval must be nonzero \
                 (a zero interval degenerates the epoch boundary)",
            ));
        }
        if self.min_ways == 0 {
            return Err(SimError::invalid_config(
                "dynamic repartitioning min_ways must be nonzero",
            ));
        }
        if self.max_step == 0 {
            return Err(SimError::invalid_config(
                "dynamic repartitioning max_step must be nonzero",
            ));
        }
        if self.ewma_permille == 0 || self.ewma_permille > 1000 {
            return Err(SimError::invalid_config(format!(
                "dynamic repartitioning ewma_permille must be in 1..=1000, got {}",
                self.ewma_permille
            )));
        }
        Ok(())
    }
}

/// Deterministic VM lifecycle churn: a seeded birth–death process with
/// optional live migration, evaluated at fixed cycle boundaries of the
/// measurement phase.
///
/// All VMs of the consolidation are declared up front; churn toggles which
/// of them are *active* (bound to cores and issuing references). At every
/// `interval`-cycle boundary the engine derives a fresh RNG stream from the
/// run seed (`churn/epoch` + boundary index) and draws, for every VM in id
/// order, one arrival and one migration chance:
///
/// * an **absent** VM spawns when its arrival draw lands below
///   `arrival_permille[vm]` (its generator is re-seeded so a re-arrival
///   replays a fresh, deterministic reference stream);
/// * an **active** VM retires when the draw lands below
///   `departure_permille[vm]` and more than `min_active` VMs are running —
///   its private caches are invalidated (dirty lines written back to the
///   LLC, directory entries cleaned up) and its cores freed;
/// * otherwise an active VM live-migrates to a different free core set when
///   the second draw lands below `migration_permille` — same private-cache
///   scrub on the old cores, and the re-warming cost is *measured*, not
///   hidden (LLC lines age out naturally under the no-flush rule).
///
/// Rates are per-boundary probabilities in permille; every draw comes from
/// the run's labelled RNG-stream discipline, so churn schedules are
/// bit-reproducible, checkpoint exactly, and are independently re-derived
/// by the differential oracle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChurnPolicy {
    /// Cycles between churn decisions. Must be nonzero — a zero interval
    /// would make the boundary degenerate (re-fire before every access).
    pub interval: u64,
    /// Per-VM arrival probability per boundary, in permille (0..=1000).
    /// Entry count must match the VM count (checked when a simulation is
    /// built).
    pub arrival_permille: Vec<u32>,
    /// Per-VM departure probability per boundary, in permille (0..=1000).
    pub departure_permille: Vec<u32>,
    /// Probability per boundary that an active, non-departing VM migrates
    /// to a fresh core set, in permille (0..=1000).
    pub migration_permille: u32,
    /// How many VMs (ids `0..initial_active`) start active; the rest arrive
    /// through the birth process. Must be at least `min_active`.
    pub initial_active: usize,
    /// Floor on the running VM population; departures that would drop below
    /// it are skipped. Must be nonzero (a zero floor would admit a zero-VM
    /// steady state with no event sources left).
    pub min_active: usize,
    /// Optional restriction on the cores migrations may land on; `None`
    /// allows any free core. Entries must be distinct cores of the machine.
    pub migration_targets: Option<Vec<usize>>,
}

impl ChurnPolicy {
    /// Validates the VM-count- and machine-independent invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `interval` is zero, if
    /// `min_active` is zero (a zero-VM steady state), if `initial_active`
    /// is below `min_active`, if any rate exceeds 1000 permille, or if
    /// `migration_targets` is `Some` but empty.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.interval == 0 {
            return Err(SimError::invalid_config(
                "churn interval must be nonzero \
                 (a zero interval degenerates the churn boundary)",
            ));
        }
        if self.min_active == 0 {
            return Err(SimError::invalid_config(
                "churn min_active must be nonzero \
                 (a zero floor admits a zero-VM steady state)",
            ));
        }
        if self.initial_active < self.min_active {
            return Err(SimError::invalid_config(format!(
                "churn initial_active ({}) must be at least min_active ({})",
                self.initial_active, self.min_active
            )));
        }
        for (name, rates) in [
            ("arrival_permille", &self.arrival_permille),
            ("departure_permille", &self.departure_permille),
        ] {
            if let Some(&bad) = rates.iter().find(|&&r| r > 1000) {
                return Err(SimError::invalid_config(format!(
                    "churn {name} entries must be at most 1000, got {bad}"
                )));
            }
        }
        if self.migration_permille > 1000 {
            return Err(SimError::invalid_config(format!(
                "churn migration_permille must be at most 1000, got {}",
                self.migration_permille
            )));
        }
        if let Some(targets) = &self.migration_targets {
            if targets.is_empty() {
                return Err(SimError::invalid_config(
                    "churn migration_targets must be non-empty when present",
                ));
            }
        }
        Ok(())
    }
}

/// Per-VM LLC way-partitioning (cache QoS).
///
/// Server-consolidation QoS proposals isolate co-scheduled VMs by
/// restricting which *ways* of each LLC set a VM may allocate into.
/// Partitioning is enforced at insertion (victim selection): lookups and
/// invalidations still see the whole set, so coherence is unaffected —
/// only capacity allocation is constrained.
///
/// # Examples
///
/// ```
/// use consim_types::config::LlcPartitioning;
///
/// // 16 ways split equally across 4 VMs: 4 contiguous ways each.
/// let masks = LlcPartitioning::EqualWays.way_masks(16, 4).unwrap().unwrap();
/// assert_eq!(masks, vec![0x000f, 0x00f0, 0x0f00, 0xf000]);
///
/// // Explicit split: VM 0 gets half the cache.
/// let skew = LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2]);
/// let masks = skew.way_masks(16, 4).unwrap().unwrap();
/// assert_eq!(masks[0].count_ones(), 8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum LlcPartitioning {
    /// No partitioning: every VM may allocate into every way (the paper's
    /// baseline machine).
    #[default]
    None,
    /// The bank associativity is divided as evenly as possible across VMs.
    ///
    /// Remainder rule (documented and pinned by tests — a deterministic
    /// round-robin of the leftover ways): every VM gets
    /// `associativity / num_vms` ways, and the first `associativity %
    /// num_vms` VMs (in VM-id order) get exactly one extra way each. E.g.
    /// 16 ways / 3 VMs → 6/5/5; 8 ways / 5 VMs → 2/2/2/1/1. Masks are
    /// contiguous, lowest ways to VM 0.
    EqualWays,
    /// An explicit per-VM way quota; entry `i` is the number of ways VM `i`
    /// may occupy. Entries must be nonzero, sum to the LLC associativity,
    /// and match the VM count one-to-one.
    ExplicitWays(Vec<u8>),
    /// Online fairness-aware repartitioning: starts from the
    /// [`LlcPartitioning::EqualWays`] split and lets a deterministic
    /// controller rebalance contiguous way masks at epoch boundaries of the
    /// measurement phase (see [`DynamicPolicy`]).
    Dynamic(DynamicPolicy),
}

impl LlcPartitioning {
    /// Canonical label used in reports and run manifests
    /// ("none", "equal-ways", "ways-8/4/2/2").
    pub fn label(&self) -> String {
        match self {
            LlcPartitioning::None => "none".to_string(),
            LlcPartitioning::EqualWays => "equal-ways".to_string(),
            LlcPartitioning::ExplicitWays(ways) => {
                let parts: Vec<String> = ways.iter().map(u8::to_string).collect();
                format!("ways-{}", parts.join("/"))
            }
            LlcPartitioning::Dynamic(_) => "dynamic".to_string(),
        }
    }

    /// Computes the per-VM allowed-way bitmasks for an LLC bank of the given
    /// associativity, or `None` when partitioning is disabled. Each VM gets
    /// a contiguous run of ways; bit `w` of `masks[vm]` is set when VM `vm`
    /// may allocate into way `w`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the associativity exceeds 64
    /// (mask width), if there are more VMs than ways, if an explicit quota
    /// has a zero entry, does not sum to the associativity, or does not have
    /// exactly one entry per VM.
    pub fn way_masks(
        &self,
        associativity: usize,
        num_vms: usize,
    ) -> Result<Option<Vec<u64>>, SimError> {
        let quotas: Vec<usize> = match self {
            LlcPartitioning::None => return Ok(None),
            LlcPartitioning::EqualWays => {
                if num_vms == 0 || num_vms > associativity {
                    return Err(SimError::invalid_config(format!(
                        "equal-ways partitioning needs 1..={associativity} VMs \
                         for a {associativity}-way LLC, got {num_vms}"
                    )));
                }
                let base = associativity / num_vms;
                let extra = associativity % num_vms;
                (0..num_vms)
                    .map(|vm| base + usize::from(vm < extra))
                    .collect()
            }
            LlcPartitioning::ExplicitWays(ways) => {
                if ways.len() != num_vms {
                    return Err(SimError::invalid_config(format!(
                        "explicit way partitioning has {} entries for {num_vms} VMs",
                        ways.len()
                    )));
                }
                if ways.contains(&0) {
                    return Err(SimError::invalid_config(
                        "explicit way partitioning entries must be nonzero",
                    ));
                }
                let sum: usize = ways.iter().map(|&w| w as usize).sum();
                if sum != associativity {
                    return Err(SimError::invalid_config(format!(
                        "explicit way partitioning sums to {sum} ways, \
                         LLC associativity is {associativity}"
                    )));
                }
                ways.iter().map(|&w| w as usize).collect()
            }
            LlcPartitioning::Dynamic(p) => {
                p.validate()?;
                if num_vms == 0 || num_vms > associativity {
                    return Err(SimError::invalid_config(format!(
                        "dynamic partitioning needs 1..={associativity} VMs \
                         for a {associativity}-way LLC, got {num_vms}"
                    )));
                }
                if p.min_ways as usize * num_vms > associativity {
                    return Err(SimError::invalid_config(format!(
                        "dynamic partitioning needs min_ways ({}) × VMs ({num_vms}) \
                         ≤ LLC associativity ({associativity})",
                        p.min_ways
                    )));
                }
                // Initial placement before the first decision: the same
                // deterministic equal split as `EqualWays` (the controller
                // rebalances from here). `min_ways × vms ≤ assoc` implies
                // every equal share is already ≥ `min_ways`.
                let base = associativity / num_vms;
                let extra = associativity % num_vms;
                (0..num_vms)
                    .map(|vm| base + usize::from(vm < extra))
                    .collect()
            }
        };
        if associativity > 64 {
            return Err(SimError::invalid_config(format!(
                "way partitioning supports at most 64-way LLCs, got {associativity}"
            )));
        }
        let mut masks = Vec::with_capacity(quotas.len());
        let mut start = 0usize;
        for quota in quotas {
            let mask = if quota == 64 {
                u64::MAX
            } else {
                ((1u64 << quota) - 1) << start
            };
            masks.push(mask);
            start += quota;
        }
        Ok(Some(masks))
    }
}

impl fmt::Display for LlcPartitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Size/shape/latency of one cache level.
///
/// # Examples
///
/// ```
/// use consim_types::config::CacheGeometry;
///
/// let l1 = CacheGeometry::new(64 * 1024, 4, 2).unwrap();
/// assert_eq!(l1.num_lines(), 1024);
/// assert_eq!(l1.num_sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub total_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheGeometry {
    /// Creates a geometry, validating that the capacity is a whole number of
    /// sets of 64 B lines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `total_bytes` is not a multiple
    /// of `associativity * 64`, or if any parameter is zero.
    pub fn new(total_bytes: usize, associativity: usize, latency: u64) -> Result<Self, SimError> {
        if total_bytes == 0 || associativity == 0 {
            return Err(SimError::invalid_config(
                "cache size and associativity must be nonzero",
            ));
        }
        let set_bytes = associativity * CACHE_LINE_BYTES;
        if !total_bytes.is_multiple_of(set_bytes) {
            return Err(SimError::invalid_config(format!(
                "cache of {total_bytes} bytes is not a whole number of {associativity}-way sets"
            )));
        }
        Ok(Self {
            total_bytes,
            associativity,
            latency,
        })
    }

    /// Total number of 64 B lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.total_bytes / CACHE_LINE_BYTES
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.associativity
    }

    /// Returns a copy scaled to `bytes` total capacity (same associativity
    /// and latency). Used to split the aggregate LLC into banks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the scaled size is not a whole
    /// number of sets.
    pub fn with_total_bytes(&self, bytes: usize) -> Result<Self, SimError> {
        Self::new(bytes, self.associativity, self.latency)
    }
}

/// Full machine description (the paper's Table III plus simulator knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of in-order cores (16 in the paper).
    pub num_cores: usize,
    /// Mesh width; the mesh is `mesh_width x (num_cores / mesh_width)`.
    pub mesh_width: usize,
    /// Private L0 geometry (8 KB / 1 cycle).
    pub l0: CacheGeometry,
    /// Private L1 geometry (64 KB / 2 cycles).
    pub l1: CacheGeometry,
    /// Aggregate LLC geometry (16 MB / 6 cycles); divided into banks by
    /// `sharing`.
    pub llc: CacheGeometry,
    /// LLC sharing degree.
    pub sharing: SharingDegree,
    /// Per-VM LLC way-partitioning policy (QoS); [`LlcPartitioning::None`]
    /// reproduces the paper's unpartitioned machine exactly.
    pub llc_partitioning: LlcPartitioning,
    /// DRAM access latency in cycles (150 in the paper).
    pub memory_latency: u64,
    /// Cycles each access occupies a memory controller (bandwidth model:
    /// one controller serves one request per this many cycles).
    pub memory_occupancy: u64,
    /// Number of memory controllers attached to the mesh (4).
    pub num_memory_controllers: usize,
    /// Per-hop link traversal latency in cycles.
    pub link_latency: u64,
    /// Router pipeline depth in cycles (3-stage in the paper).
    pub router_pipeline: u64,
    /// Directory-cache entries per home node; a directory-cache miss costs an
    /// extra off-chip access.
    pub directory_cache_entries: usize,
    /// Average non-memory instructions executed between two memory
    /// references (in-order, 1 IPC).
    pub instructions_per_memory_op: u64,
    /// Optional VM lifecycle churn (birth–death arrivals, departures and
    /// live migration); `None` reproduces the paper's static population.
    pub churn: Option<ChurnPolicy>,
}

impl MachineConfig {
    /// The machine from the paper's Table III.
    ///
    /// # Examples
    ///
    /// ```
    /// use consim_types::config::MachineConfig;
    /// let m = MachineConfig::paper_default();
    /// assert_eq!(m.num_cores, 16);
    /// assert_eq!(m.memory_latency, 150);
    /// assert_eq!(m.llc_banks(), 1); // fully shared by default
    /// ```
    pub fn paper_default() -> Self {
        MachineConfigBuilder::new()
            .build()
            .expect("paper default configuration is valid")
    }

    /// Returns a copy with a different LLC sharing degree.
    pub fn with_sharing(&self, sharing: SharingDegree) -> Self {
        let mut copy = self.clone();
        copy.sharing = sharing;
        copy
    }

    /// Returns a copy with a different LLC way-partitioning policy. The
    /// policy is re-validated against the VM count when a simulation is
    /// built from the config.
    pub fn with_llc_partitioning(&self, partitioning: LlcPartitioning) -> Self {
        let mut copy = self.clone();
        copy.llc_partitioning = partitioning;
        copy
    }

    /// Returns a copy with a VM lifecycle churn policy. The per-VM rate
    /// vectors are re-validated against the VM count when a simulation is
    /// built from the config.
    pub fn with_churn(&self, churn: ChurnPolicy) -> Self {
        let mut copy = self.clone();
        copy.churn = Some(churn);
        copy
    }

    /// Number of LLC banks under the current sharing degree.
    pub fn llc_banks(&self) -> usize {
        self.sharing.num_banks(self.num_cores)
    }

    /// Number of cores sharing each LLC bank.
    pub fn cores_per_bank(&self) -> usize {
        self.sharing.cores_per_bank(self.num_cores)
    }

    /// Geometry of a single LLC bank (aggregate capacity / bank count).
    ///
    /// # Panics
    ///
    /// Panics if the aggregate LLC cannot be split evenly — prevented at
    /// build time by [`MachineConfigBuilder::build`].
    pub fn llc_bank_geometry(&self) -> CacheGeometry {
        let banks = self.llc_banks();
        self.llc
            .with_total_bytes(self.llc.total_bytes / banks)
            .expect("validated at build time")
    }

    /// The LLC bank serving a given core: cores are grouped contiguously,
    /// `[0..n)`, `[n..2n)`, ... as in the paper's Figure 1.
    pub fn bank_of_core(&self, core: crate::ids::CoreId) -> crate::ids::BankId {
        crate::ids::BankId::new(core.index() / self.cores_per_bank())
    }

    /// The cores attached to a given LLC bank.
    pub fn cores_of_bank(&self, bank: crate::ids::BankId) -> std::ops::Range<usize> {
        let n = self.cores_per_bank();
        bank.index() * n..(bank.index() + 1) * n
    }

    /// Mesh height.
    pub fn mesh_height(&self) -> usize {
        self.num_cores / self.mesh_width
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builder for [`MachineConfig`] ([C-BUILDER]).
///
/// # Examples
///
/// ```
/// use consim_types::config::{MachineConfigBuilder, SharingDegree};
///
/// let machine = MachineConfigBuilder::new()
///     .sharing(SharingDegree::SharedBy(4))
///     .memory_latency(200)
///     .build()?;
/// assert_eq!(machine.llc_banks(), 4);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    num_cores: usize,
    mesh_width: usize,
    l0: CacheGeometry,
    l1: CacheGeometry,
    llc: CacheGeometry,
    sharing: SharingDegree,
    llc_partitioning: LlcPartitioning,
    memory_latency: u64,
    memory_occupancy: u64,
    num_memory_controllers: usize,
    link_latency: u64,
    router_pipeline: u64,
    directory_cache_entries: usize,
    instructions_per_memory_op: u64,
    churn: Option<ChurnPolicy>,
}

impl MachineConfigBuilder {
    /// Starts from the paper's Table III values.
    pub fn new() -> Self {
        Self {
            num_cores: 16,
            mesh_width: 4,
            l0: CacheGeometry {
                total_bytes: 8 * 1024,
                associativity: 2,
                latency: 1,
            },
            l1: CacheGeometry {
                total_bytes: 64 * 1024,
                associativity: 4,
                latency: 2,
            },
            llc: CacheGeometry {
                total_bytes: 16 * 1024 * 1024,
                associativity: 16,
                latency: 6,
            },
            sharing: SharingDegree::FullyShared,
            llc_partitioning: LlcPartitioning::None,
            memory_latency: 150,
            memory_occupancy: 30,
            num_memory_controllers: 4,
            link_latency: 1,
            router_pipeline: 3,
            directory_cache_entries: 8192,
            instructions_per_memory_op: 2,
            churn: None,
        }
    }

    /// Sets the core count.
    pub fn num_cores(&mut self, n: usize) -> &mut Self {
        self.num_cores = n;
        self
    }

    /// Sets the mesh width (must divide the core count).
    pub fn mesh_width(&mut self, w: usize) -> &mut Self {
        self.mesh_width = w;
        self
    }

    /// Sets the private L0 geometry.
    pub fn l0(&mut self, geom: CacheGeometry) -> &mut Self {
        self.l0 = geom;
        self
    }

    /// Sets the private L1 geometry.
    pub fn l1(&mut self, geom: CacheGeometry) -> &mut Self {
        self.l1 = geom;
        self
    }

    /// Sets the aggregate LLC geometry.
    pub fn llc(&mut self, geom: CacheGeometry) -> &mut Self {
        self.llc = geom;
        self
    }

    /// Sets the LLC sharing degree.
    pub fn sharing(&mut self, sharing: SharingDegree) -> &mut Self {
        self.sharing = sharing;
        self
    }

    /// Sets the per-VM LLC way-partitioning policy.
    pub fn llc_partitioning(&mut self, partitioning: LlcPartitioning) -> &mut Self {
        self.llc_partitioning = partitioning;
        self
    }

    /// Sets the DRAM latency.
    pub fn memory_latency(&mut self, cycles: u64) -> &mut Self {
        self.memory_latency = cycles;
        self
    }

    /// Sets the per-access memory-controller occupancy (bandwidth).
    pub fn memory_occupancy(&mut self, cycles: u64) -> &mut Self {
        self.memory_occupancy = cycles;
        self
    }

    /// Sets the number of memory controllers.
    pub fn num_memory_controllers(&mut self, n: usize) -> &mut Self {
        self.num_memory_controllers = n;
        self
    }

    /// Sets the per-hop link latency.
    pub fn link_latency(&mut self, cycles: u64) -> &mut Self {
        self.link_latency = cycles;
        self
    }

    /// Sets the router pipeline depth.
    pub fn router_pipeline(&mut self, cycles: u64) -> &mut Self {
        self.router_pipeline = cycles;
        self
    }

    /// Sets the per-node directory-cache capacity (entries).
    pub fn directory_cache_entries(&mut self, entries: usize) -> &mut Self {
        self.directory_cache_entries = entries;
        self
    }

    /// Sets the mean number of non-memory instructions between references.
    pub fn instructions_per_memory_op(&mut self, n: u64) -> &mut Self {
        self.instructions_per_memory_op = n;
        self
    }

    /// Sets the VM lifecycle churn policy (`None` = static population).
    pub fn churn(&mut self, churn: Option<ChurnPolicy>) -> &mut Self {
        self.churn = churn;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if:
    /// * the mesh width does not divide the core count;
    /// * the sharing degree does not divide the core count;
    /// * the LLC cannot be split into equal banks of whole sets;
    /// * any count is zero.
    pub fn build(&self) -> Result<MachineConfig, SimError> {
        if self.num_cores == 0 {
            return Err(SimError::invalid_config("machine needs at least one core"));
        }
        if self.mesh_width == 0 || !self.num_cores.is_multiple_of(self.mesh_width) {
            return Err(SimError::invalid_config(format!(
                "mesh width {} does not divide core count {}",
                self.mesh_width, self.num_cores
            )));
        }
        let per_bank = self.sharing.cores_per_bank(self.num_cores);
        if per_bank == 0 || !self.num_cores.is_multiple_of(per_bank) {
            return Err(SimError::invalid_config(format!(
                "sharing degree {} does not divide core count {}",
                self.sharing, self.num_cores
            )));
        }
        let banks = self.num_cores / per_bank;
        if !self.llc.total_bytes.is_multiple_of(banks) {
            return Err(SimError::invalid_config(format!(
                "LLC of {} bytes does not split into {banks} equal banks",
                self.llc.total_bytes
            )));
        }
        // Validate that each bank is a whole number of sets.
        self.llc.with_total_bytes(self.llc.total_bytes / banks)?;
        // Re-validate the per-level geometries (caller may have constructed
        // them directly with struct syntax through a config copy).
        CacheGeometry::new(self.l0.total_bytes, self.l0.associativity, self.l0.latency)?;
        CacheGeometry::new(self.l1.total_bytes, self.l1.associativity, self.l1.latency)?;
        if self.num_memory_controllers == 0 || self.num_memory_controllers > self.num_cores {
            return Err(SimError::invalid_config(
                "memory controller count must be in 1..=num_cores",
            ));
        }
        // Way-partitioning constraints that don't need the VM count are
        // checked here; the per-VM checks (entry count vs VMs, equal split
        // feasibility) re-run in `SimulationConfigBuilder::build`.
        match &self.llc_partitioning {
            LlcPartitioning::None => {}
            LlcPartitioning::EqualWays => {
                if self.llc.associativity > 64 {
                    return Err(SimError::invalid_config(format!(
                        "way partitioning supports at most 64-way LLCs, got {}",
                        self.llc.associativity
                    )));
                }
            }
            LlcPartitioning::ExplicitWays(ways) => {
                // Validating with num_vms = len checks mask width, nonzero
                // entries, and the sum-to-associativity invariant.
                self.llc_partitioning
                    .way_masks(self.llc.associativity, ways.len())?;
            }
            LlcPartitioning::Dynamic(p) => {
                if self.llc.associativity > 64 {
                    return Err(SimError::invalid_config(format!(
                        "way partitioning supports at most 64-way LLCs, got {}",
                        self.llc.associativity
                    )));
                }
                p.validate()?;
            }
        }
        // The directory cache is 8-way set-associative; a capacity that is
        // not a whole number of sets would otherwise only be rejected much
        // later, at simulation construction, with a confusing byte count.
        if self.directory_cache_entries == 0 || !self.directory_cache_entries.is_multiple_of(8) {
            return Err(SimError::invalid_config(format!(
                "directory cache capacity must be a positive multiple of 8 entries, got {}",
                self.directory_cache_entries
            )));
        }
        // Churn invariants that don't need the VM count; per-VM rate-vector
        // lengths and active-population bounds re-run in
        // `SimulationConfigBuilder::build`.
        if let Some(churn) = &self.churn {
            churn.validate()?;
            if let Some(targets) = &churn.migration_targets {
                if let Some(&bad) = targets.iter().find(|&&c| c >= self.num_cores) {
                    return Err(SimError::invalid_config(format!(
                        "churn migration target core {bad} is outside the \
                         machine's {} cores",
                        self.num_cores
                    )));
                }
                let mut seen = targets.clone();
                seen.sort_unstable();
                seen.dedup();
                if seen.len() != targets.len() {
                    return Err(SimError::invalid_config(
                        "churn migration_targets must be distinct cores",
                    ));
                }
            }
        }
        Ok(MachineConfig {
            num_cores: self.num_cores,
            mesh_width: self.mesh_width,
            l0: self.l0,
            l1: self.l1,
            llc: self.llc,
            sharing: self.sharing,
            llc_partitioning: self.llc_partitioning.clone(),
            memory_latency: self.memory_latency,
            memory_occupancy: self.memory_occupancy,
            num_memory_controllers: self.num_memory_controllers,
            link_latency: self.link_latency,
            router_pipeline: self.router_pipeline,
            directory_cache_entries: self.directory_cache_entries,
            instructions_per_memory_op: self.instructions_per_memory_op,
            churn: self.churn.clone(),
        })
    }
}

impl Default for MachineConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BankId, CoreId};

    #[test]
    fn paper_default_matches_table3() {
        let m = MachineConfig::paper_default();
        assert_eq!(m.num_cores, 16);
        assert_eq!(m.mesh_width, 4);
        assert_eq!(m.l0.total_bytes, 8 * 1024);
        assert_eq!(m.l0.latency, 1);
        assert_eq!(m.l1.total_bytes, 64 * 1024);
        assert_eq!(m.l1.latency, 2);
        assert_eq!(m.llc.total_bytes, 16 * 1024 * 1024);
        assert_eq!(m.llc.latency, 6);
        assert_eq!(m.memory_latency, 150);
        assert_eq!(m.router_pipeline, 3);
    }

    #[test]
    fn directory_cache_capacity_must_fit_whole_sets() {
        // Regression (found by consim-check differential fuzzing): a
        // capacity that is not a multiple of the directory cache's 8-way
        // associativity used to pass config validation and only fail at
        // simulation construction with a confusing byte-count message.
        let mut b = MachineConfigBuilder::new();
        b.directory_cache_entries(12);
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("multiple of 8"), "unexpected error: {err}");
        b.directory_cache_entries(16);
        assert!(b.build().is_ok());
    }

    #[test]
    fn sharing_degrees_partition_the_llc() {
        let m = MachineConfig::paper_default();
        let cases = [
            (SharingDegree::Private, 16, 1 << 20),
            (SharingDegree::SharedBy(2), 8, 2 << 20),
            (SharingDegree::SharedBy(4), 4, 4 << 20),
            (SharingDegree::SharedBy(8), 2, 8 << 20),
            (SharingDegree::FullyShared, 1, 16 << 20),
        ];
        for (deg, banks, bank_bytes) in cases {
            let m = m.with_sharing(deg);
            assert_eq!(m.llc_banks(), banks, "{deg}");
            assert_eq!(m.llc_bank_geometry().total_bytes, bank_bytes, "{deg}");
        }
    }

    #[test]
    fn bank_of_core_groups_contiguously() {
        let m = MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4));
        assert_eq!(m.bank_of_core(CoreId::new(0)), BankId::new(0));
        assert_eq!(m.bank_of_core(CoreId::new(3)), BankId::new(0));
        assert_eq!(m.bank_of_core(CoreId::new(4)), BankId::new(1));
        assert_eq!(m.bank_of_core(CoreId::new(15)), BankId::new(3));
        assert_eq!(m.cores_of_bank(BankId::new(2)), 8..12);
    }

    #[test]
    fn builder_rejects_bad_mesh() {
        let err = MachineConfigBuilder::new()
            .mesh_width(5)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("mesh width"));
    }

    #[test]
    fn builder_rejects_bad_sharing() {
        let err = MachineConfigBuilder::new()
            .sharing(SharingDegree::SharedBy(3))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("sharing degree"));
    }

    #[test]
    fn builder_rejects_zero_cores() {
        assert!(MachineConfigBuilder::new().num_cores(0).build().is_err());
    }

    #[test]
    fn builder_rejects_too_many_memory_controllers() {
        assert!(MachineConfigBuilder::new()
            .num_memory_controllers(17)
            .build()
            .is_err());
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(0, 4, 1).is_err());
        assert!(CacheGeometry::new(64 * 3, 2, 1).is_err()); // 192 B / 2-way = 1.5 sets
        let g = CacheGeometry::new(8 * 1024, 2, 1).unwrap();
        assert_eq!(g.num_lines(), 128);
        assert_eq!(g.num_sets(), 64);
    }

    #[test]
    fn sharing_labels() {
        assert_eq!(SharingDegree::Private.label(), "private");
        assert_eq!(SharingDegree::SharedBy(8).label(), "shared-8");
        assert_eq!(SharingDegree::FullyShared.label(), "shared");
    }

    #[test]
    fn paper_sweep_order() {
        let sweep = SharingDegree::paper_sweep();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0], SharingDegree::Private);
        assert_eq!(sweep[4], SharingDegree::FullyShared);
    }

    #[test]
    fn mesh_height() {
        let m = MachineConfig::paper_default();
        assert_eq!(m.mesh_height(), 4);
    }

    #[test]
    fn partitioning_defaults_to_none() {
        let m = MachineConfig::paper_default();
        assert_eq!(m.llc_partitioning, LlcPartitioning::None);
        assert_eq!(m.llc_partitioning.way_masks(16, 4).unwrap(), None);
    }

    #[test]
    fn equal_ways_masks_are_contiguous_and_disjoint() {
        let masks = LlcPartitioning::EqualWays
            .way_masks(16, 4)
            .unwrap()
            .unwrap();
        assert_eq!(masks, vec![0x000f, 0x00f0, 0x0f00, 0xf000]);
        // Uneven split: first `ways % vms` VMs get the extra way.
        let masks = LlcPartitioning::EqualWays
            .way_masks(16, 3)
            .unwrap()
            .unwrap();
        assert_eq!(
            masks.iter().map(|m| m.count_ones()).collect::<Vec<_>>(),
            vec![6, 5, 5]
        );
        assert_eq!(masks.iter().fold(0u64, |acc, m| acc | m), 0xffff);
        assert!(masks
            .iter()
            .enumerate()
            .all(|(i, m)| masks[..i].iter().all(|prev| prev & m == 0)));
    }

    #[test]
    fn equal_ways_remainder_rule_is_pinned() {
        // The documented deterministic rule: base = ways / vms, and the
        // first `ways % vms` VMs (by id) get exactly one extra way, masks
        // contiguous from way 0. Pinned for 3 VMs / 16 ways...
        let masks = LlcPartitioning::EqualWays
            .way_masks(16, 3)
            .unwrap()
            .unwrap();
        assert_eq!(masks, vec![0x003f, 0x07c0, 0xf800]); // 6 | 5 | 5
                                                         // ...and 5 VMs / 8 ways.
        let masks = LlcPartitioning::EqualWays.way_masks(8, 5).unwrap().unwrap();
        assert_eq!(
            masks.iter().map(|m| m.count_ones()).collect::<Vec<_>>(),
            vec![2, 2, 2, 1, 1]
        );
        assert_eq!(
            masks,
            vec![
                0b0000_0011,
                0b0000_1100,
                0b0011_0000,
                0b0100_0000,
                0b1000_0000
            ]
        );
        assert_eq!(masks.iter().fold(0u64, |acc, m| acc | m), 0xff);
        assert!(masks
            .iter()
            .enumerate()
            .all(|(i, m)| masks[..i].iter().all(|prev| prev & m == 0)));
    }

    #[test]
    fn equal_ways_rejects_more_vms_than_ways() {
        let err = LlcPartitioning::EqualWays.way_masks(2, 3).unwrap_err();
        assert!(err.to_string().contains("equal-ways"));
    }

    #[test]
    fn explicit_ways_must_sum_to_associativity() {
        let p = LlcPartitioning::ExplicitWays(vec![8, 4, 2]);
        let err = p.way_masks(16, 3).unwrap_err();
        assert!(err.to_string().contains("sums to 14"), "{err}");
        let err = MachineConfigBuilder::new()
            .llc_partitioning(p)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("sums to 14"), "{err}");
    }

    #[test]
    fn explicit_ways_must_match_vm_count() {
        let p = LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2]);
        assert!(p.way_masks(16, 4).is_ok());
        let err = p.way_masks(16, 3).unwrap_err();
        assert!(err.to_string().contains("4 entries for 3 VMs"), "{err}");
    }

    #[test]
    fn explicit_ways_rejects_zero_quota() {
        let p = LlcPartitioning::ExplicitWays(vec![16, 0]);
        assert!(p.way_masks(16, 2).is_err());
    }

    #[test]
    fn full_width_mask_does_not_overflow() {
        let p = LlcPartitioning::ExplicitWays(vec![64]);
        let masks = p.way_masks(64, 1).unwrap().unwrap();
        assert_eq!(masks, vec![u64::MAX]);
        assert!(p.way_masks(65, 1).is_err());
    }

    #[test]
    fn partitioning_labels() {
        assert_eq!(LlcPartitioning::None.label(), "none");
        assert_eq!(LlcPartitioning::EqualWays.label(), "equal-ways");
        assert_eq!(
            LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2]).to_string(),
            "ways-8/4/2/2"
        );
        assert_eq!(
            LlcPartitioning::Dynamic(DynamicPolicy::default()).label(),
            "dynamic"
        );
    }

    #[test]
    fn dynamic_initial_masks_equal_the_equal_ways_split() {
        let dynamic = LlcPartitioning::Dynamic(DynamicPolicy::default());
        for (assoc, vms) in [(16, 4), (16, 3), (8, 5), (64, 1)] {
            assert_eq!(
                dynamic.way_masks(assoc, vms).unwrap(),
                LlcPartitioning::EqualWays.way_masks(assoc, vms).unwrap(),
                "{assoc}-way / {vms} VMs"
            );
        }
    }

    #[test]
    fn builder_rejects_zero_dynamic_epoch_interval() {
        // Satellite bugfix: a zero interval would make the repartition
        // boundary degenerate (`next = start.saturating_add(0)` re-fires
        // before every access), so it is a typed config error at build time.
        let p = DynamicPolicy {
            epoch_interval: 0,
            ..DynamicPolicy::default()
        };
        let err = MachineConfigBuilder::new()
            .llc_partitioning(LlcPartitioning::Dynamic(p.clone()))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("epoch_interval"), "{err}");
        // The same rejection guards the VM-aware path used by the
        // simulation builder (reachable via `with_llc_partitioning`).
        let err = LlcPartitioning::Dynamic(p).way_masks(16, 4).unwrap_err();
        assert!(err.to_string().contains("epoch_interval"), "{err}");
    }

    #[test]
    fn dynamic_parameter_validation() {
        let ok = DynamicPolicy::default();
        assert!(ok.validate().is_ok());
        for bad in [
            DynamicPolicy {
                min_ways: 0,
                ..ok.clone()
            },
            DynamicPolicy {
                max_step: 0,
                ..ok.clone()
            },
            DynamicPolicy {
                ewma_permille: 0,
                ..ok.clone()
            },
            DynamicPolicy {
                ewma_permille: 1001,
                ..ok.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
            assert!(MachineConfigBuilder::new()
                .llc_partitioning(LlcPartitioning::Dynamic(bad))
                .build()
                .is_err());
        }
    }

    #[test]
    fn dynamic_min_ways_feasibility_is_vm_aware() {
        let p = DynamicPolicy {
            min_ways: 3,
            ..DynamicPolicy::default()
        };
        let part = LlcPartitioning::Dynamic(p);
        // 3 ways × 5 VMs = 15 ≤ 16: feasible.
        assert!(part.way_masks(16, 5).is_ok());
        // 3 ways × 6 VMs = 18 > 16: rejected with a typed error.
        let err = part.way_masks(16, 6).unwrap_err();
        assert!(err.to_string().contains("min_ways"), "{err}");
        // More VMs than ways is rejected like the static policies.
        assert!(LlcPartitioning::Dynamic(DynamicPolicy::default())
            .way_masks(4, 5)
            .is_err());
    }

    fn churn_policy() -> ChurnPolicy {
        ChurnPolicy {
            interval: 20_000,
            arrival_permille: vec![200, 200],
            departure_permille: vec![100, 100],
            migration_permille: 150,
            initial_active: 2,
            min_active: 1,
            migration_targets: None,
        }
    }

    #[test]
    fn builder_accepts_valid_churn() {
        let m = MachineConfigBuilder::new()
            .churn(Some(churn_policy()))
            .build()
            .unwrap();
        assert_eq!(m.churn, Some(churn_policy()));
        // `with_churn` is the sweep-style helper, like `with_sharing`.
        let m2 = MachineConfig::paper_default().with_churn(churn_policy());
        assert_eq!(m2.churn, Some(churn_policy()));
    }

    #[test]
    fn builder_rejects_zero_churn_interval() {
        // Same degenerate-boundary rule as the Dynamic epoch_interval: a
        // zero interval would re-fire the churn boundary before every
        // access, so it is a typed config error at build time.
        let p = ChurnPolicy {
            interval: 0,
            ..churn_policy()
        };
        assert!(p.validate().is_err());
        let err = MachineConfigBuilder::new()
            .churn(Some(p))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("interval"), "{err}");
    }

    #[test]
    fn builder_rejects_zero_vm_steady_state() {
        // min_active = 0 would let the birth–death process retire every VM
        // and leave the event loop with no sources.
        let p = ChurnPolicy {
            min_active: 0,
            ..churn_policy()
        };
        let err = MachineConfigBuilder::new()
            .churn(Some(p))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("min_active"), "{err}");
        // initial_active below the floor is equally degenerate.
        let p = ChurnPolicy {
            initial_active: 0,
            ..churn_policy()
        };
        let err = MachineConfigBuilder::new()
            .churn(Some(p))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("initial_active"), "{err}");
    }

    #[test]
    fn builder_rejects_migration_target_outside_machine() {
        let p = ChurnPolicy {
            migration_targets: Some(vec![0, 1, 16]),
            ..churn_policy()
        };
        let err = MachineConfigBuilder::new()
            .churn(Some(p))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
        // Duplicate targets are rejected too.
        let p = ChurnPolicy {
            migration_targets: Some(vec![3, 3]),
            ..churn_policy()
        };
        let err = MachineConfigBuilder::new()
            .churn(Some(p))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("distinct"), "{err}");
        // An empty restriction is a contradiction, not "no restriction".
        let p = ChurnPolicy {
            migration_targets: Some(vec![]),
            ..churn_policy()
        };
        assert!(MachineConfigBuilder::new().churn(Some(p)).build().is_err());
    }

    #[test]
    fn builder_rejects_churn_rates_above_1000() {
        for p in [
            ChurnPolicy {
                arrival_permille: vec![1001, 0],
                ..churn_policy()
            },
            ChurnPolicy {
                departure_permille: vec![0, 2000],
                ..churn_policy()
            },
            ChurnPolicy {
                migration_permille: 1001,
                ..churn_policy()
            },
        ] {
            assert!(p.validate().is_err(), "{p:?}");
            assert!(MachineConfigBuilder::new().churn(Some(p)).build().is_err());
        }
    }
}
