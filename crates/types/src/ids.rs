//! Strongly-typed identifiers for simulator entities.
//!
//! Every entity the simulator reasons about — cores, virtual machines,
//! workload threads, LLC banks, mesh nodes, memory controllers — gets its own
//! newtype over `usize` so the type system prevents, e.g., indexing a cache
//! bank array with a core id ([C-NEWTYPE]).
//!
//! All ids are plain indices starting at 0 and are `Copy`.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $display:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub usize);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($display, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// A physical core on the CMP (0..16 in the paper's machine).
    CoreId,
    "core"
);
define_id!(
    /// A virtual machine, i.e. one consolidated workload instance.
    VmId,
    "vm"
);
define_id!(
    /// A thread *within* one workload instance (0..4 in the paper).
    ThreadId,
    "thread"
);
define_id!(
    /// A last-level-cache bank. The number of banks depends on the sharing
    /// degree: private => 16 banks, shared-4-way => 4 banks, fully shared => 1.
    BankId,
    "bank"
);
define_id!(
    /// A node of the 2-D mesh interconnect. Cores, LLC banks, directory
    /// slices and memory controllers all attach to mesh nodes.
    NodeId,
    "node"
);
define_id!(
    /// An on-chip memory controller (4 in the paper's machine).
    MemCtrlId,
    "memctrl"
);

/// A fully-qualified thread: instance `thread` of workload `vm`.
///
/// This is the unit the scheduling policies place onto cores.
///
/// # Examples
///
/// ```
/// use consim_types::ids::{GlobalThreadId, ThreadId, VmId};
/// let t = GlobalThreadId::new(VmId::new(2), ThreadId::new(3));
/// assert_eq!(t.vm.index(), 2);
/// assert_eq!(t.thread.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalThreadId {
    /// The owning virtual machine.
    pub vm: VmId,
    /// The thread index within that VM.
    pub thread: ThreadId,
}

impl GlobalThreadId {
    /// Creates a fully-qualified thread id.
    #[inline]
    pub const fn new(vm: VmId, thread: ThreadId) -> Self {
        Self { vm, thread }
    }

    /// Flattens to a single index given the number of threads per VM.
    ///
    /// # Examples
    ///
    /// ```
    /// use consim_types::ids::{GlobalThreadId, ThreadId, VmId};
    /// let t = GlobalThreadId::new(VmId::new(1), ThreadId::new(2));
    /// assert_eq!(t.flat_index(4), 6);
    /// ```
    #[inline]
    pub const fn flat_index(self, threads_per_vm: usize) -> usize {
        self.vm.index() * threads_per_vm + self.thread.index()
    }
}

impl fmt::Display for GlobalThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.vm, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_roundtrip_through_usize() {
        let c = CoreId::new(7);
        let raw: usize = c.into();
        assert_eq!(raw, 7);
        assert_eq!(CoreId::from(raw), c);
    }

    #[test]
    fn display_includes_kind_and_index() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(VmId::new(0).to_string(), "vm0");
        assert_eq!(BankId::new(12).to_string(), "bank12");
        assert_eq!(NodeId::new(5).to_string(), "node5");
        assert_eq!(MemCtrlId::new(1).to_string(), "memctrl1");
        assert_eq!(ThreadId::new(2).to_string(), "thread2");
    }

    #[test]
    fn ids_of_different_kinds_are_distinct_types() {
        // Purely a compile-time property; this test documents the intent.
        fn takes_core(_: CoreId) {}
        takes_core(CoreId::new(1));
    }

    #[test]
    fn global_thread_flat_index_is_injective_for_paper_shape() {
        let mut seen = HashSet::new();
        for vm in 0..4 {
            for t in 0..4 {
                let g = GlobalThreadId::new(VmId::new(vm), ThreadId::new(t));
                assert!(seen.insert(g.flat_index(4)));
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn global_thread_display() {
        let g = GlobalThreadId::new(VmId::new(1), ThreadId::new(3));
        assert_eq!(g.to_string(), "vm1.thread3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert!(VmId::new(0) < VmId::new(3));
    }

    #[test]
    fn default_id_is_zero() {
        assert_eq!(CoreId::default().index(), 0);
        assert_eq!(GlobalThreadId::default().flat_index(4), 0);
    }
}
