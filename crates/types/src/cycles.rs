//! Simulation-time arithmetic.
//!
//! A [`Cycle`] is a point on the global simulation clock; a plain `u64` is
//! used for durations. The newtype prevents accidentally mixing clock values
//! with, say, instruction counts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in core clock cycles since the start
/// of the run.
///
/// # Examples
///
/// ```
/// use consim_types::cycles::Cycle;
///
/// let start = Cycle::ZERO;
/// let later = start + 150;
/// assert_eq!(later - start, 150);
/// assert!(later > start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Duration since `earlier`, saturating at zero if `earlier` is actually
    /// later (useful when comparing unordered event timestamps).
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, duration: u64) -> Cycle {
        Cycle(self.0 + duration)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, duration: u64) {
        self.0 += duration;
    }
}

impl Sub for Cycle {
    type Output = u64;

    /// Duration between two time points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle duration");
        self.0 - rhs.0
    }
}

impl Sum<u64> for Cycle {
    fn sum<I: Iterator<Item = u64>>(iter: I) -> Self {
        Cycle(iter.sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// Running mean of cycle durations without storing samples.
///
/// Used pervasively for latency statistics (e.g. average L1-miss latency).
///
/// # Examples
///
/// ```
/// use consim_types::cycles::LatencyAccumulator;
///
/// let mut acc = LatencyAccumulator::new();
/// acc.record(10);
/// acc.record(20);
/// assert_eq!(acc.count(), 2);
/// assert_eq!(acc.mean(), 15.0);
/// assert_eq!(acc.max(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyAccumulator {
    count: u64,
    total: u64,
    max: u64,
    min: u64,
}

impl LatencyAccumulator {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        Self {
            count: 0,
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.total += latency;
        self.max = self.max.max(latency);
        self.min = self.min.min(latency);
    }

    /// Number of samples recorded.
    #[inline]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Mean latency, or 0.0 if no samples were recorded.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Largest sample, or 0 if empty.
    #[inline]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample, or 0 if empty.
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The raw `(count, total, max, min)` fields, for checkpointing. The
    /// `min` word is returned unmasked (it may be the empty-accumulator
    /// sentinel); feed it back through
    /// [`LatencyAccumulator::from_raw_parts`] for an exact round trip.
    pub const fn raw_parts(&self) -> (u64, u64, u64, u64) {
        (self.count, self.total, self.max, self.min)
    }

    /// Reconstructs an accumulator from [`LatencyAccumulator::raw_parts`].
    pub const fn from_raw_parts(count: u64, total: u64, max: u64, min: u64) -> Self {
        Self {
            count,
            total,
            max,
            min,
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyAccumulator) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        if other.count > 0 {
            self.min = self.min.min(other.min);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_add_and_sub() {
        let a = Cycle::new(100);
        let b = a + 50;
        assert_eq!(b.raw(), 150);
        assert_eq!(b - a, 50);
    }

    #[test]
    fn cycle_add_assign() {
        let mut c = Cycle::ZERO;
        c += 7;
        c += 3;
        assert_eq!(c, Cycle::new(10));
    }

    #[test]
    fn cycle_min_max() {
        let a = Cycle::new(5);
        let b = Cycle::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = LatencyAccumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), 0);
        assert_eq!(acc.max(), 0);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut acc = LatencyAccumulator::new();
        for v in [7, 3, 11, 5] {
            acc.record(v);
        }
        assert_eq!(acc.min(), 3);
        assert_eq!(acc.max(), 11);
        assert_eq!(acc.total(), 26);
        assert_eq!(acc.count(), 4);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = LatencyAccumulator::new();
        a.record(10);
        let mut b = LatencyAccumulator::new();
        b.record(2);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 10);
        assert_eq!(a.total(), 16);
    }

    #[test]
    fn raw_parts_round_trip_exactly() {
        let mut acc = LatencyAccumulator::new();
        acc.record(9);
        acc.record(2);
        let (count, total, max, min) = acc.raw_parts();
        assert_eq!(
            LatencyAccumulator::from_raw_parts(count, total, max, min),
            acc
        );
        // The empty accumulator's min sentinel survives the round trip too.
        let empty = LatencyAccumulator::new();
        let (c, t, mx, mn) = empty.raw_parts();
        assert_eq!(mn, u64::MAX);
        assert_eq!(LatencyAccumulator::from_raw_parts(c, t, mx, mn), empty);
    }

    #[test]
    fn accumulator_merge_with_empty_keeps_min() {
        let mut a = LatencyAccumulator::new();
        a.record(10);
        a.merge(&LatencyAccumulator::new());
        assert_eq!(a.min(), 10);
        assert_eq!(a.count(), 1);
    }
}
