//! A fast, non-cryptographic hasher for simulator-internal maps.
//!
//! The directory and footprint maps are keyed by small integers (block
//! addresses) and sit on the per-reference hot path; SipHash's
//! HashDoS resistance buys nothing there because keys come from the
//! simulator itself, not from untrusted input. This is the multiply-rotate
//! scheme popularized by Firefox ("FxHash"), implemented locally so the
//! workspace stays dependency-free.
//!
//! # Examples
//!
//! ```
//! use consim_types::hash::FastHashMap;
//!
//! let mut m: FastHashMap<u64, &str> = FastHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a 64-bit odd constant derived from
/// the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; state is a single `u64`.
///
/// Not HashDoS-resistant — use only for keys the simulator generates
/// itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut h = FastHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3][..]));
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        // Tail handling: lengths that are not multiples of 8.
        assert_ne!(hash_of(&[0u8; 7][..]), hash_of(&[0u8; 9][..]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..1_000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m[&999], 1_998);

        let s: FastHashSet<u64> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&7));
    }

    #[test]
    fn low_collision_rate_on_sequential_keys() {
        // Sequential block addresses are the common key pattern; the hash
        // must spread them across 64 buckets reasonably.
        let mut buckets = [0u32; 64];
        for i in 0..64_000u64 {
            buckets[(hash_of(&i) >> 58) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 4_000, "bucket skew too high: {max}");
    }
}
