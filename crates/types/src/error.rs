//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a simulation.
///
/// # Examples
///
/// ```
/// use consim_types::SimError;
/// let e = SimError::invalid_config("mesh width must divide core count");
/// assert!(e.to_string().contains("mesh width"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A machine, workload, or experiment configuration was inconsistent.
    InvalidConfig(String),
    /// A scheduling policy could not place all threads on the machine.
    Placement(String),
    /// A simulation invariant was violated (indicates a simulator bug).
    Invariant(String),
    /// The end-of-run counter audit found inconsistent statistics
    /// (indicates counter drift between subsystems — the figures derived
    /// from this run cannot be trusted).
    AuditFailed(String),
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        SimError::InvalidConfig(msg.into())
    }

    /// Convenience constructor for [`SimError::Placement`].
    pub fn placement(msg: impl Into<String>) -> Self {
        SimError::Placement(msg.into())
    }

    /// Convenience constructor for [`SimError::Invariant`].
    pub fn invariant(msg: impl Into<String>) -> Self {
        SimError::Invariant(msg.into())
    }

    /// Convenience constructor for [`SimError::AuditFailed`].
    pub fn audit_failed(msg: impl Into<String>) -> Self {
        SimError::AuditFailed(msg.into())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Placement(msg) => write!(f, "placement failed: {msg}"),
            SimError::Invariant(msg) => write!(f, "simulation invariant violated: {msg}"),
            SimError::AuditFailed(msg) => write!(f, "counter audit failed: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            SimError::invalid_config("x").to_string(),
            "invalid configuration: x"
        );
        assert_eq!(SimError::placement("y").to_string(), "placement failed: y");
        assert_eq!(
            SimError::invariant("z").to_string(),
            "simulation invariant violated: z"
        );
        assert_eq!(
            SimError::audit_failed("w").to_string(),
            "counter audit failed: w"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(SimError::invariant("boom"));
        assert!(e.source().is_none());
    }
}
