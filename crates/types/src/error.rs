//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Why a snapshot could not be written or restored.
///
/// Every corruption class maps to exactly one kind so tests (and operators
/// reading logs) can tell a stale file from a torn write from bit rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotErrorKind {
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The format version is one this build cannot read.
    BadVersion,
    /// The file ended before a declared section/field was complete.
    Truncated,
    /// A section's checksum did not match its payload (bit rot, torn write).
    Checksum,
    /// The bytes decoded but describe a state inconsistent with the
    /// configuration (wrong section name, shape mismatch, invalid tag).
    Corrupt,
    /// An underlying I/O operation failed while reading or writing.
    Io,
}

impl fmt::Display for SnapshotErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnapshotErrorKind::BadMagic => "bad magic",
            SnapshotErrorKind::BadVersion => "unsupported version",
            SnapshotErrorKind::Truncated => "truncated",
            SnapshotErrorKind::Checksum => "checksum mismatch",
            SnapshotErrorKind::Corrupt => "corrupt",
            SnapshotErrorKind::Io => "io",
        })
    }
}

/// Errors produced while configuring or running a simulation.
///
/// # Examples
///
/// ```
/// use consim_types::SimError;
/// let e = SimError::invalid_config("mesh width must divide core count");
/// assert!(e.to_string().contains("mesh width"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A machine, workload, or experiment configuration was inconsistent.
    InvalidConfig(String),
    /// A scheduling policy could not place all threads on the machine.
    Placement(String),
    /// A simulation invariant was violated (indicates a simulator bug).
    Invariant(String),
    /// The end-of-run counter audit found inconsistent statistics
    /// (indicates counter drift between subsystems — the figures derived
    /// from this run cannot be trusted).
    AuditFailed(String),
    /// A checkpoint snapshot could not be written or restored (see
    /// [`SnapshotErrorKind`] for the corruption class).
    Snapshot(SnapshotErrorKind, String),
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        SimError::InvalidConfig(msg.into())
    }

    /// Convenience constructor for [`SimError::Placement`].
    pub fn placement(msg: impl Into<String>) -> Self {
        SimError::Placement(msg.into())
    }

    /// Convenience constructor for [`SimError::Invariant`].
    pub fn invariant(msg: impl Into<String>) -> Self {
        SimError::Invariant(msg.into())
    }

    /// Convenience constructor for [`SimError::AuditFailed`].
    pub fn audit_failed(msg: impl Into<String>) -> Self {
        SimError::AuditFailed(msg.into())
    }

    /// Convenience constructor for [`SimError::Snapshot`].
    pub fn snapshot(kind: SnapshotErrorKind, msg: impl Into<String>) -> Self {
        SimError::Snapshot(kind, msg.into())
    }

    /// The corruption class, if this is a snapshot error.
    pub fn snapshot_kind(&self) -> Option<SnapshotErrorKind> {
        match self {
            SimError::Snapshot(kind, _) => Some(*kind),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Placement(msg) => write!(f, "placement failed: {msg}"),
            SimError::Invariant(msg) => write!(f, "simulation invariant violated: {msg}"),
            SimError::AuditFailed(msg) => write!(f, "counter audit failed: {msg}"),
            SimError::Snapshot(kind, msg) => write!(f, "snapshot error ({kind}): {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            SimError::invalid_config("x").to_string(),
            "invalid configuration: x"
        );
        assert_eq!(SimError::placement("y").to_string(), "placement failed: y");
        assert_eq!(
            SimError::invariant("z").to_string(),
            "simulation invariant violated: z"
        );
        assert_eq!(
            SimError::audit_failed("w").to_string(),
            "counter audit failed: w"
        );
        assert_eq!(
            SimError::snapshot(SnapshotErrorKind::Checksum, "section caches").to_string(),
            "snapshot error (checksum mismatch): section caches"
        );
    }

    #[test]
    fn snapshot_kind_is_queryable() {
        let e = SimError::snapshot(SnapshotErrorKind::Truncated, "eof");
        assert_eq!(e.snapshot_kind(), Some(SnapshotErrorKind::Truncated));
        assert_eq!(SimError::invariant("x").snapshot_kind(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(SimError::invariant("boom"));
        assert!(e.source().is_none());
    }
}
