//! Seeded generation of small randomized fuzz cases.
//!
//! A [`FuzzCase`] is a flat, plain-data description of one differential
//! run: machine shape, workload knobs per VM, and run quotas. It is
//! generated from a single `u64` seed (so any failure is replayable from
//! one number), then [canonicalized](FuzzCase::canonicalize) into a valid
//! configuration — the same canonicalization the shrinker relies on to
//! keep its transformed candidates buildable.
//!
//! The generator deliberately over-weights degenerate shapes: one core,
//! one VM, direct-mapped caches, single-set LLC banks, zero warmup. Those
//! corners are where off-by-one and empty-set bugs live, and they also
//! shrink well.

use consim::engine::SimulationConfig;
use consim_cache::ReplacementPolicy;
use consim_sched::SchedulingPolicy;
use consim_types::config::{
    CacheGeometry, ChurnPolicy, DynamicPolicy, LlcPartitioning, MachineConfig, SharingDegree,
};
use consim_types::rng::SimRng;
use consim_types::SimError;
use consim_workload::{WorkloadProfile, WorkloadProfileBuilder};

/// Workload knobs for one VM of a fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzVm {
    pub threads: usize,
    pub footprint_blocks: u64,
    pub shared_fraction: f64,
    pub shared_access_prob: f64,
    pub shared_write_prob: f64,
    pub private_write_prob: f64,
    pub shared_zipf: f64,
    pub private_zipf: f64,
    pub recent_reuse_prob: f64,
    pub recent_window: usize,
    pub handoff_access_prob: f64,
    pub handoff_segments: usize,
    pub handoff_segment_blocks: u64,
}

/// One replayable differential-fuzzing case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// The seed this case was generated from (printed on divergence).
    pub case_seed: u64,
    /// The simulation seed (workload streams, random placements).
    pub sim_seed: u64,
    pub num_cores: usize,
    pub mesh_width: usize,
    pub cores_per_bank: usize,
    pub l0_sets: usize,
    pub l0_ways: usize,
    pub l1_sets: usize,
    pub l1_ways: usize,
    pub llc_bank_sets: usize,
    pub llc_ways: usize,
    pub llc_partitioning: LlcPartitioning,
    pub memory_controllers: usize,
    pub directory_cache_entries: usize,
    pub instructions_per_memory_op: u64,
    pub memory_latency: u64,
    pub link_latency: u64,
    pub policy: SchedulingPolicy,
    pub vms: Vec<FuzzVm>,
    pub refs_per_vm: u64,
    pub warmup_refs_per_vm: u64,
    pub prewarm_llc: bool,
    pub reschedule_every: Option<u64>,
    pub churn: Option<ChurnPolicy>,
}

/// Power-of-two sizes weighted toward the degenerate low end.
const CORE_CHOICES: &[usize] = &[1, 1, 2, 2, 4, 4, 8, 16];
const SET_CHOICES: &[usize] = &[1, 1, 2, 4, 8];
const WAY_CHOICES: &[usize] = &[1, 1, 2, 4];
const POLICIES: &[SchedulingPolicy] = &[
    SchedulingPolicy::RoundRobin,
    SchedulingPolicy::Affinity,
    SchedulingPolicy::RrAffinity,
    SchedulingPolicy::Random,
];

fn pick<T: Copy>(rng: &mut SimRng, choices: &[T]) -> T {
    choices[rng.index(choices.len())]
}

/// Largest divisor of `n` that is `<= want` (falls back to 1).
fn divisor_at_most(n: usize, want: usize) -> usize {
    (1..=want.max(1).min(n))
        .rev()
        .find(|&d| n.is_multiple_of(d))
        .unwrap_or(1)
}

impl FuzzCase {
    /// Deterministically generates (and canonicalizes) the case for a seed.
    pub fn generate(case_seed: u64) -> Self {
        let mut rng = SimRng::from_seed(case_seed).derive("check/case");
        let num_cores = pick(&mut rng, CORE_CHOICES);
        let num_vms = pick(&mut rng, &[1usize, 1, 1, 2, 2, 3]);
        let vms = (0..num_vms)
            .map(|_| {
                let threads = 1 + rng.index(4);
                let footprint_blocks = threads as u64 + 1 + rng.below(96);
                FuzzVm {
                    threads,
                    footprint_blocks,
                    shared_fraction: rng.unit(),
                    shared_access_prob: rng.unit(),
                    shared_write_prob: rng.unit(),
                    private_write_prob: rng.unit(),
                    shared_zipf: rng.unit() * 0.95,
                    private_zipf: rng.unit() * 0.95,
                    recent_reuse_prob: if rng.chance(0.5) { rng.unit() } else { 0.0 },
                    recent_window: 1 + rng.index(8),
                    handoff_access_prob: if rng.chance(0.25) { rng.unit() } else { 0.0 },
                    handoff_segments: threads + rng.index(3),
                    handoff_segment_blocks: 1 + rng.below(4),
                }
            })
            .collect();
        let mut case = FuzzCase {
            case_seed,
            sim_seed: rng.next_u64(),
            num_cores,
            mesh_width: 1 + rng.index(num_cores),
            cores_per_bank: 1 + rng.index(num_cores),
            l0_sets: pick(&mut rng, SET_CHOICES),
            l0_ways: pick(&mut rng, WAY_CHOICES),
            l1_sets: pick(&mut rng, SET_CHOICES),
            l1_ways: pick(&mut rng, WAY_CHOICES),
            llc_bank_sets: pick(&mut rng, SET_CHOICES),
            llc_ways: pick(&mut rng, WAY_CHOICES),
            llc_partitioning: LlcPartitioning::None,
            memory_controllers: 1 + rng.index(num_cores),
            directory_cache_entries: 8 * (1 + rng.index(8)),
            instructions_per_memory_op: 1 + rng.below(4),
            memory_latency: 1 + rng.below(400),
            link_latency: 1 + rng.below(4),
            policy: pick(&mut rng, POLICIES),
            vms,
            refs_per_vm: 1 + rng.below(600),
            warmup_refs_per_vm: if rng.chance(0.3) { 0 } else { rng.below(300) },
            prewarm_llc: rng.chance(0.5),
            reschedule_every: if rng.chance(0.3) {
                Some(1 + rng.below(5_000))
            } else {
                None
            },
            churn: None,
        };
        // ~55% of cases exercise way partitioning: ~30% the dynamic
        // repartitioning controller (short epochs, so decisions fire and
        // ways actually move inside tiny runs), the rest split between the
        // two static policies. Random explicit splits start from one way
        // per VM and sprinkle the rest; canonicalize repairs anything VM
        // shedding or a too-narrow LLC invalidates.
        let partitioning_draw = rng.unit();
        if partitioning_draw < 0.30 {
            case.llc_partitioning = LlcPartitioning::Dynamic(DynamicPolicy {
                epoch_interval: 50 + rng.below(5_000),
                min_ways: 1 + rng.below(2) as u8,
                max_step: 1 + rng.below(2) as u8,
                ewma_permille: 100 + rng.below(800) as u32,
                deadband_milli: rng.below(100) as u32,
                light_miss_permille: rng.below(50) as u32,
                stream_memory_permille: 400 + rng.below(600) as u32,
            });
        } else if partitioning_draw < 0.55 {
            case.llc_partitioning = if rng.chance(0.5) {
                LlcPartitioning::EqualWays
            } else {
                let n = case.vms.len();
                let mut ways = vec![1u8; n];
                for _ in n..case.llc_ways {
                    ways[rng.index(n)] += 1;
                }
                LlcPartitioning::ExplicitWays(ways)
            };
        }
        // ~30% of cases exercise VM lifecycle churn: short intervals so
        // boundaries actually fire inside tiny runs, aggressive rates so
        // spawns, retires, and migrations all occur. Churn replaces
        // periodic rescheduling when drawn (the builder rejects the
        // combination — both would rewrite the core bindings).
        if rng.chance(0.3) {
            case.reschedule_every = None;
            let n = case.vms.len();
            let interval = 50 + rng.below(5_000);
            let arrival: Vec<u32> = (0..n).map(|_| rng.below(1001) as u32).collect();
            let departure: Vec<u32> = (0..n).map(|_| rng.below(1001) as u32).collect();
            let migration = rng.below(1001) as u32;
            let initial_active = 1 + rng.index(n);
            let subset: Vec<usize> = (0..case.num_cores).filter(|_| rng.chance(0.5)).collect();
            let migration_targets = if !subset.is_empty() && rng.chance(0.25) {
                Some(subset)
            } else {
                None
            };
            case.churn = Some(ChurnPolicy {
                interval,
                arrival_permille: arrival,
                departure_permille: departure,
                migration_permille: migration,
                initial_active,
                min_active: 1,
                migration_targets,
            });
        }
        case.canonicalize();
        case
    }

    /// Skews an already-generated case toward the engine's L0/L1-hit fast
    /// path: bigger private caches, strong recent-block reuse, a tighter
    /// footprint, and enough shared-write traffic that
    /// write-hits-on-Shared — the fast path's mandatory bail-out into the
    /// upgrade transaction — actually occur. Used by the CI fuzz smoke's
    /// `--high-locality` pass and the fast-path mutation proof: a
    /// fast-path bug that misclassifies hits shows up most readily in a
    /// stream that is nearly all hits.
    pub fn bias_high_locality(&mut self) {
        self.l0_sets = self.l0_sets.max(4);
        self.l0_ways = self.l0_ways.max(2);
        self.l1_sets = self.l1_sets.max(8);
        self.l1_ways = self.l1_ways.max(2);
        for vm in &mut self.vms {
            vm.recent_reuse_prob = vm.recent_reuse_prob.max(0.8);
            vm.recent_window = vm.recent_window.clamp(1, 8);
            vm.footprint_blocks = vm.footprint_blocks.min(vm.threads as u64 + 32);
            vm.shared_access_prob = vm.shared_access_prob.max(0.3);
            vm.shared_write_prob = vm.shared_write_prob.max(0.2);
        }
        self.canonicalize();
    }

    /// Forces lifecycle churn onto an already-generated case — CI's
    /// `--churn` smoke pass, where every case must exercise the birth–death
    /// draws. Cases that already drew churn keep their policy; the rest get
    /// one derived from the case seed, with arrival rates floored so the
    /// population actually moves inside a tiny run. Periodic rescheduling
    /// is dropped either way (the builder rejects the combination).
    pub fn bias_churn(&mut self) {
        self.reschedule_every = None;
        if self.churn.is_none() {
            let mut rng = SimRng::from_seed(self.case_seed).derive("check/churn-bias");
            let n = self.vms.len();
            self.churn = Some(ChurnPolicy {
                interval: 50 + rng.below(2_000),
                arrival_permille: (0..n).map(|_| 300 + rng.below(701) as u32).collect(),
                departure_permille: (0..n).map(|_| rng.below(701) as u32).collect(),
                migration_permille: rng.below(1001) as u32,
                initial_active: 1 + rng.index(n),
                min_active: 1,
                migration_targets: None,
            });
        }
        self.canonicalize();
    }

    /// Clamps every field into a valid configuration. Idempotent; called
    /// after generation and after every shrink transform.
    pub fn canonicalize(&mut self) {
        self.num_cores = self.num_cores.clamp(1, 64);
        if !self.num_cores.is_power_of_two() {
            self.num_cores = self.num_cores.next_power_of_two() / 2;
        }
        self.mesh_width = divisor_at_most(self.num_cores, self.mesh_width);
        self.cores_per_bank = divisor_at_most(self.num_cores, self.cores_per_bank);
        for field in [
            &mut self.l0_sets,
            &mut self.l0_ways,
            &mut self.l1_sets,
            &mut self.l1_ways,
            &mut self.llc_bank_sets,
            &mut self.llc_ways,
        ] {
            *field = (*field).clamp(1, 64);
        }
        self.memory_controllers = self.memory_controllers.clamp(1, self.num_cores);
        // The directory cache is 8-way: capacity must be a multiple of 8.
        self.directory_cache_entries = self.directory_cache_entries.max(1).next_multiple_of(8);
        self.instructions_per_memory_op = self.instructions_per_memory_op.max(1);
        self.memory_latency = self.memory_latency.max(1);
        self.link_latency = self.link_latency.max(1);
        self.refs_per_vm = self.refs_per_vm.max(1);

        if self.vms.is_empty() {
            self.vms.push(FuzzVm {
                threads: 1,
                footprint_blocks: 2,
                shared_fraction: 0.0,
                shared_access_prob: 0.0,
                shared_write_prob: 0.0,
                private_write_prob: 0.5,
                shared_zipf: 0.0,
                private_zipf: 0.0,
                recent_reuse_prob: 0.0,
                recent_window: 1,
                handoff_access_prob: 0.0,
                handoff_segments: 1,
                handoff_segment_blocks: 1,
            });
        }
        self.vms.truncate(self.num_cores.max(1));
        for vm in &mut self.vms {
            vm.threads = vm.threads.max(1);
        }
        // Keep the total thread count on-machine: shed threads from the
        // widest VM until everything fits.
        loop {
            let total: usize = self.vms.iter().map(|v| v.threads).sum();
            if total <= self.num_cores {
                break;
            }
            let widest = self
                .vms
                .iter_mut()
                .max_by_key(|v| v.threads)
                .expect("vms is nonempty");
            if widest.threads > 1 {
                widest.threads -= 1;
            } else {
                self.vms.pop();
            }
        }
        for vm in &mut self.vms {
            vm.footprint_blocks = vm.footprint_blocks.max(vm.threads as u64 + 1);
            for p in [
                &mut vm.shared_fraction,
                &mut vm.shared_access_prob,
                &mut vm.shared_write_prob,
                &mut vm.private_write_prob,
                &mut vm.recent_reuse_prob,
                &mut vm.handoff_access_prob,
            ] {
                *p = p.clamp(0.0, 1.0);
            }
            vm.shared_zipf = vm.shared_zipf.clamp(0.0, 0.95);
            vm.private_zipf = vm.private_zipf.clamp(0.0, 0.95);
            vm.recent_window = vm.recent_window.clamp(1, 64);
            vm.handoff_segments = vm.handoff_segments.max(vm.threads);
            vm.handoff_segment_blocks = vm.handoff_segment_blocks.max(1);
        }
        // Way partitioning must fit the final VM count and LLC shape:
        // with fewer ways than VMs no partitioning is possible, and an
        // explicit split that no longer matches (a shrink dropped a VM or
        // halved the ways) is replaced by the deterministic equal split.
        if self.llc_ways < self.vms.len() {
            self.llc_partitioning = LlcPartitioning::None;
        } else if let LlcPartitioning::Dynamic(policy) = &self.llc_partitioning {
            // A dynamic policy that no longer fits (min_ways floor exceeds
            // the shrunken LLC) degrades to the static equal split, which
            // is always feasible past the ways-vs-VMs check above.
            let feasible = policy.validate().is_ok()
                && policy.min_ways as usize * self.vms.len() <= self.llc_ways;
            if !feasible {
                self.llc_partitioning = LlcPartitioning::EqualWays;
            }
        } else if let LlcPartitioning::ExplicitWays(ways) = &self.llc_partitioning {
            let valid = ways.len() == self.vms.len()
                && ways.iter().all(|&w| w > 0)
                && ways.iter().map(|&w| w as usize).sum::<usize>() == self.llc_ways;
            if !valid {
                let n = self.vms.len();
                let base = (self.llc_ways / n) as u8;
                let extra = self.llc_ways % n;
                self.llc_partitioning = LlcPartitioning::ExplicitWays(
                    (0..n).map(|i| base + u8::from(i < extra)).collect(),
                );
            }
        }
        // Lifecycle churn must fit the final mix and machine: rate vectors
        // track the (possibly shed) VM count, the population bounds stay
        // feasible, migration targets stay on-machine, and a single-VM mix
        // cannot schedule the departure of its last VM. Churn combined with
        // periodic rescheduling (rejected by the builder) degrades to the
        // static population — the shrinker drops churn first anyway.
        if self.reschedule_every.is_some() {
            self.churn = None;
        }
        if let Some(churn) = &mut self.churn {
            let n = self.vms.len();
            churn.interval = churn.interval.max(1);
            churn.arrival_permille.resize(n, 0);
            churn.departure_permille.resize(n, 0);
            for rate in churn
                .arrival_permille
                .iter_mut()
                .chain(churn.departure_permille.iter_mut())
            {
                *rate = (*rate).min(1000);
            }
            churn.migration_permille = churn.migration_permille.min(1000);
            churn.initial_active = churn.initial_active.clamp(1, n);
            churn.min_active = churn.min_active.clamp(1, churn.initial_active);
            if n == 1 {
                churn.departure_permille[0] = 0;
            }
            if let Some(targets) = &mut churn.migration_targets {
                targets.retain(|&core| core < self.num_cores);
                targets.sort_unstable();
                targets.dedup();
                if targets.is_empty() {
                    churn.migration_targets = None;
                }
            }
        }
    }

    /// The machine configuration this case describes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if a canonicalized case still
    /// fails machine validation (a generator bug — canonicalize should
    /// prevent it).
    pub fn machine(&self) -> Result<MachineConfig, SimError> {
        let banks = self.num_cores / self.cores_per_bank;
        let sharing = if self.cores_per_bank == self.num_cores {
            SharingDegree::FullyShared
        } else if self.cores_per_bank == 1 {
            SharingDegree::Private
        } else {
            SharingDegree::SharedBy(self.cores_per_bank)
        };
        let mut b = consim_types::config::MachineConfigBuilder::new();
        b.num_cores(self.num_cores)
            .mesh_width(self.mesh_width)
            .l0(CacheGeometry::new(
                self.l0_sets * self.l0_ways * 64,
                self.l0_ways,
                1,
            )?)
            .l1(CacheGeometry::new(
                self.l1_sets * self.l1_ways * 64,
                self.l1_ways,
                2,
            )?)
            .llc(CacheGeometry::new(
                banks * self.llc_bank_sets * self.llc_ways * 64,
                self.llc_ways,
                6,
            )?)
            .sharing(sharing)
            .llc_partitioning(self.llc_partitioning.clone())
            .memory_latency(self.memory_latency)
            .num_memory_controllers(self.memory_controllers)
            .link_latency(self.link_latency)
            .directory_cache_entries(self.directory_cache_entries)
            .instructions_per_memory_op(self.instructions_per_memory_op)
            .churn(self.churn.clone());
        b.build()
    }

    /// Builds the per-VM workload profiles. Knob combinations that an
    /// individual profile rejects (e.g. a handoff region larger than the
    /// shared region) are degraded feature-by-feature rather than
    /// discarded, so every case still runs.
    fn profiles(&self) -> Vec<WorkloadProfile> {
        self.vms
            .iter()
            .enumerate()
            .map(|(i, vm)| {
                // Ladder of progressively tamer candidates: full feature
                // set, then without handoff, then without shared accesses.
                for drop_features in 0..3 {
                    let mut b = WorkloadProfileBuilder::new(format!("fuzz-vm{i}"))
                        .threads(vm.threads)
                        .footprint_blocks(vm.footprint_blocks)
                        .shared_fraction(vm.shared_fraction)
                        .shared_write_prob(vm.shared_write_prob)
                        .private_write_prob(vm.private_write_prob)
                        .shared_zipf(vm.shared_zipf)
                        .private_zipf(vm.private_zipf)
                        .recent_reuse_prob(vm.recent_reuse_prob)
                        .recent_window(vm.recent_window)
                        .refs_per_transaction(1)
                        .default_transactions(1);
                    b = if drop_features < 2 {
                        b.shared_access_prob(vm.shared_access_prob)
                    } else {
                        b.shared_access_prob(0.0)
                    };
                    b = if drop_features < 1 {
                        b.handoff_access_prob(vm.handoff_access_prob)
                            .handoff_segments(vm.handoff_segments)
                            .handoff_segment_blocks(vm.handoff_segment_blocks)
                            .handoff_write_prob(vm.shared_write_prob)
                            .handoff_touches(1)
                    } else {
                        b.handoff_access_prob(0.0)
                    };
                    if let Ok(profile) = b.build() {
                        return profile;
                    }
                }
                unreachable!("the tamest profile candidate is always valid")
            })
            .collect()
    }

    /// Builds the full simulation configuration (audit always on).
    ///
    /// # Errors
    ///
    /// Propagates machine or simulation validation failures; a
    /// canonicalized case should never produce one.
    pub fn build(&self) -> Result<SimulationConfig, SimError> {
        let mut b = SimulationConfig::builder();
        b.machine(self.machine()?)
            .policy(self.policy)
            .seed(self.sim_seed)
            .refs_per_vm(self.refs_per_vm)
            .warmup_refs_per_vm(self.warmup_refs_per_vm)
            .llc_replacement(ReplacementPolicy::Lru)
            .prewarm_llc(self.prewarm_llc)
            .audit(true);
        for profile in self.profiles() {
            b.workload(profile);
        }
        if let Some(cycles) = self.reschedule_every {
            b.reschedule_every(cycles);
        }
        b.build()
    }

    /// Scalar size metric for shrinking: every accepted shrink transform
    /// must strictly decrease it, which bounds the shrink loop.
    pub fn size(&self) -> u64 {
        let threads: usize = self.vms.iter().map(|v| v.threads).sum();
        let footprint: u64 = self.vms.iter().map(|v| v.footprint_blocks).sum();
        let banks = (self.num_cores / self.cores_per_bank) as u64;
        let cache_lines = (self.l0_sets * self.l0_ways + self.l1_sets * self.l1_ways) as u64
            * self.num_cores as u64
            + (self.llc_bank_sets * self.llc_ways) as u64 * banks;
        self.num_cores as u64 * 100_000
            + self.vms.len() as u64 * 50_000
            + threads as u64 * 10_000
            + (self.refs_per_vm + self.warmup_refs_per_vm) * 20
            + footprint * 10
            + cache_lines * 5
            + u64::from(self.prewarm_llc) * 1_000
            + u64::from(self.reschedule_every.is_some()) * 1_000
            // Churn costs the most of the feature knobs so the shrinker's
            // drop-churn-first candidate is always a strict size decrease.
            + u64::from(self.churn.is_some()) * 1_500
            + u64::from(self.llc_partitioning != LlcPartitioning::None) * 500
            // Dynamic costs extra so shrinking it to the static equal
            // split is a strict size decrease.
            + u64::from(matches!(self.llc_partitioning, LlcPartitioning::Dynamic(_))) * 250
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(FuzzCase::generate(7), FuzzCase::generate(7));
        assert_ne!(FuzzCase::generate(7), FuzzCase::generate(8));
    }

    #[test]
    fn generated_cases_build() {
        for seed in 0..200 {
            let case = FuzzCase::generate(seed);
            case.build()
                .unwrap_or_else(|e| panic!("seed {seed} does not build: {e}"));
        }
    }

    #[test]
    fn canonicalize_is_idempotent() {
        for seed in 0..50 {
            let case = FuzzCase::generate(seed);
            let mut again = case.clone();
            again.canonicalize();
            assert_eq!(case, again, "seed {seed}");
        }
    }

    #[test]
    fn degenerate_shapes_appear() {
        let cases: Vec<FuzzCase> = (0..300).map(FuzzCase::generate).collect();
        assert!(cases.iter().any(|c| c.num_cores == 1));
        assert!(cases.iter().any(|c| c.vms.len() == 1));
        assert!(cases
            .iter()
            .any(|c| c.llc_bank_sets == 1 && c.llc_ways == 1));
        assert!(cases.iter().any(|c| c.l0_ways == 1));
        assert!(cases.iter().any(|c| c.warmup_refs_per_vm == 0));
    }

    #[test]
    fn partitioned_cases_appear() {
        let cases: Vec<FuzzCase> = (0..300).map(FuzzCase::generate).collect();
        assert!(cases
            .iter()
            .any(|c| c.llc_partitioning == LlcPartitioning::EqualWays));
        assert!(cases
            .iter()
            .any(|c| matches!(c.llc_partitioning, LlcPartitioning::ExplicitWays(_))));
        // Every partitioned case survived canonicalization with a split
        // that actually fits its machine.
        for c in cases
            .iter()
            .filter(|c| c.llc_partitioning != LlcPartitioning::None)
        {
            assert!(c.vms.len() <= c.llc_ways, "seed {}", c.case_seed);
        }
        // Dynamic cases appear in force (the draw aims for ~30%; some
        // degrade to EqualWays or None when the LLC is too narrow) and
        // every survivor is feasible.
        let dynamic: Vec<&FuzzCase> = cases
            .iter()
            .filter(|c| matches!(c.llc_partitioning, LlcPartitioning::Dynamic(_)))
            .collect();
        assert!(
            dynamic.len() >= 30,
            "only {} of 300 cases are dynamic",
            dynamic.len()
        );
        for c in &dynamic {
            let LlcPartitioning::Dynamic(policy) = &c.llc_partitioning else {
                unreachable!()
            };
            assert!(policy.validate().is_ok(), "seed {}", c.case_seed);
            assert!(
                policy.min_ways as usize * c.vms.len() <= c.llc_ways,
                "seed {}",
                c.case_seed
            );
        }
    }

    #[test]
    fn churned_cases_appear_and_stay_feasible() {
        let cases: Vec<FuzzCase> = (0..300).map(FuzzCase::generate).collect();
        let churned: Vec<&FuzzCase> = cases.iter().filter(|c| c.churn.is_some()).collect();
        // The draw aims for ~30%; only the rescheduling conflict (resolved
        // at generation time) can suppress it.
        assert!(
            churned.len() >= 60,
            "only {} of 300 cases are churned",
            churned.len()
        );
        for c in &churned {
            let churn = c.churn.as_ref().unwrap();
            assert!(churn.validate().is_ok(), "seed {}", c.case_seed);
            assert_eq!(
                churn.arrival_permille.len(),
                c.vms.len(),
                "seed {}",
                c.case_seed
            );
            assert_eq!(
                churn.departure_permille.len(),
                c.vms.len(),
                "seed {}",
                c.case_seed
            );
            assert!(churn.initial_active <= c.vms.len(), "seed {}", c.case_seed);
            assert!(
                c.reschedule_every.is_none(),
                "churn and rescheduling must not coexist, seed {}",
                c.case_seed
            );
            if c.vms.len() == 1 {
                assert_eq!(churn.departure_permille[0], 0, "seed {}", c.case_seed);
            }
            if let Some(targets) = &churn.migration_targets {
                assert!(
                    targets.iter().all(|&core| core < c.num_cores),
                    "seed {}",
                    c.case_seed
                );
            }
        }
        // Restricted-target migrations appear too.
        assert!(
            churned
                .iter()
                .any(|c| c.churn.as_ref().unwrap().migration_targets.is_some()),
            "no churned case restricts migration targets"
        );
    }

    #[test]
    fn high_locality_bias_keeps_cases_valid() {
        for seed in 0..100 {
            let mut case = FuzzCase::generate(seed);
            case.bias_high_locality();
            let mut again = case.clone();
            again.canonicalize();
            assert_eq!(case, again, "bias must leave a canonical case, seed {seed}");
            case.build()
                .unwrap_or_else(|e| panic!("biased seed {seed} does not build: {e}"));
            assert!(case.l1_sets >= 8 && case.l1_ways >= 2, "seed {seed}");
            assert!(
                case.vms.iter().all(|vm| vm.recent_reuse_prob >= 0.8),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn thread_budget_respects_core_count() {
        for seed in 0..100 {
            let case = FuzzCase::generate(seed);
            let total: usize = case.vms.iter().map(|v| v.threads).sum();
            assert!(total <= case.num_cores, "seed {seed}");
        }
    }
}
