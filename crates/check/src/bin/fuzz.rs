//! Differential fuzzing driver.
//!
//! ```text
//! cargo run --release -p consim-check --bin fuzz -- --cases 500 --seed 7
//! cargo run --release -p consim-check --bin fuzz -- --cases 200 --seed 11 --resume
//! cargo run --release -p consim-check --bin fuzz -- --cases 200 --seed 19 --high-locality
//! cargo run --release -p consim-check --bin fuzz -- --cases 200 --seed 23 --churn
//! cargo run --release -p consim-check --bin fuzz -- --replay <case-seed>
//! ```
//!
//! Each case builds a small randomized machine + workload mix, runs it
//! through the engine with the counter audit enabled, and replays the
//! observed access stream through the naive reference model. On any
//! divergence the case seed is printed (replayable with `--replay`), the
//! case is shrunk to a minimal still-failing configuration, and the
//! process exits nonzero.
//!
//! With `--resume`, every case is additionally split at a seeded cut
//! point: the engine is checkpointed mid-run, resumed into a fresh
//! simulation, and must agree with the naive model *and* bit-identically
//! with an uninterrupted run of the same case.
//!
//! With `--high-locality`, every generated case is skewed toward the
//! engine's private-hit fast path (bigger L0/L1, strong recent-block
//! reuse, shared writes) so hit-heavy streams — where a fast-path
//! misclassification would hide — get dedicated coverage.
//!
//! With `--churn`, every case carries a lifecycle-churn policy: cases
//! that already drew one keep it, the rest get a seed-derived policy with
//! arrival rates floored so the population actually moves. This is the CI
//! smoke for the birth–death/migration oracle, which otherwise only sees
//! churn on the ~30% of cases that draw it.

use consim_bench::cli::BenchFlags;
use consim_check::{run_case, run_case_resumed, shrink, CaseOutcome, FuzzCase, Mutation};
use consim_types::rng::SimRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    // `--resume` is a mode switch here (not a journal directory as in the
    // experiment bins), so it is peeled off before the shared parser.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut take_switch = |name: &str| {
        if let Some(pos) = raw.iter().position(|a| a == name) {
            raw.remove(pos);
            true
        } else {
            false
        }
    };
    let resume = take_switch("--resume");
    let high_locality = take_switch("--high-locality");
    let churn = take_switch("--churn");
    let parsed = BenchFlags::parse(raw.into_iter()).and_then(|mut flags| {
        let cases = flags.take_u64("--cases")?.unwrap_or(500);
        let seed = flags.take_u64("--seed")?.unwrap_or(1);
        let replay = flags.take_u64("--replay")?;
        if let Some(extra) = flags.rest.first() {
            return Err(format!("unrecognized argument {extra:?}"));
        }
        Ok((cases, seed, replay))
    });
    let (cases, seed, replay) = match parsed {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("fuzz: {msg}");
            eprintln!(
                "usage: fuzz [--cases N] [--seed S] [--resume] [--high-locality] \
                 [--churn] [--replay CASE_SEED]"
            );
            return ExitCode::from(2);
        }
    };
    let harness: fn(&FuzzCase, Option<Mutation>) -> CaseOutcome =
        if resume { run_case_resumed } else { run_case };
    let generate = |case_seed: u64| {
        let mut case = FuzzCase::generate(case_seed);
        if high_locality {
            case.bias_high_locality();
        }
        if churn {
            case.bias_churn();
        }
        case
    };

    if let Some(case_seed) = replay {
        return run_one(
            &generate(case_seed),
            harness,
            resume,
            high_locality,
            churn,
            true,
        );
    }

    let mut rng = SimRng::from_seed(seed).derive("check/cases");
    let mut total_steps = 0u64;
    for i in 0..cases {
        let case_seed = rng.next_u64();
        let case = generate(case_seed);
        match harness(&case, None) {
            CaseOutcome::Pass { steps } => total_steps += steps,
            failure => return report_failure(&case, &failure, resume, high_locality, churn),
        }
        if (i + 1) % 100 == 0 {
            println!("fuzz: {}/{cases} cases passed", i + 1);
        }
    }
    let mode = match (resume, high_locality, churn) {
        (true, _, _) => "checkpoint/resume seam, ",
        (false, _, true) => "lifecycle churn, ",
        (false, true, false) => "high-locality bias, ",
        (false, false, false) => "",
    };
    println!(
        "fuzz: {cases} cases passed (seed {seed}, {mode}{total_steps} accesses compared, \
         0 divergences)"
    );
    ExitCode::SUCCESS
}

fn run_one(
    case: &FuzzCase,
    harness: fn(&FuzzCase, Option<Mutation>) -> CaseOutcome,
    resume: bool,
    high_locality: bool,
    churn: bool,
    verbose: bool,
) -> ExitCode {
    let case_seed = case.case_seed;
    if verbose {
        println!("fuzz: replaying case seed {case_seed}");
        println!("{case:#?}");
    }
    match harness(case, None) {
        CaseOutcome::Pass { steps } => {
            println!("fuzz: case seed {case_seed} passes ({steps} accesses compared)");
            ExitCode::SUCCESS
        }
        failure => report_failure(case, &failure, resume, high_locality, churn),
    }
}

fn report_failure(
    case: &FuzzCase,
    failure: &CaseOutcome,
    resume: bool,
    high_locality: bool,
    churn: bool,
) -> ExitCode {
    let kind = match failure {
        CaseOutcome::Divergence(msg) => format!("divergence: {msg}"),
        CaseOutcome::EngineError(msg) => format!("engine error: {msg}"),
        CaseOutcome::Pass { .. } => unreachable!("report_failure on a pass"),
    };
    eprintln!("fuzz: FAILURE on case seed {}", case.case_seed);
    eprintln!("fuzz: {kind}");
    let mut flags = String::new();
    if resume {
        flags.push_str(" --resume");
    }
    if high_locality {
        flags.push_str(" --high-locality");
    }
    if churn {
        flags.push_str(" --churn");
    }
    eprintln!(
        "fuzz: replay with: cargo run -p consim-check --bin fuzz --{flags} --replay {}",
        case.case_seed
    );
    if resume && !run_case(case, None).is_failure() {
        // The shrinker minimizes against the straight harness; a seam-only
        // failure (straight passes, resumed diverges) is reported as-is.
        eprintln!("fuzz: straight run passes — failure is specific to the resume seam");
        return ExitCode::FAILURE;
    }
    eprintln!("fuzz: shrinking...");
    let small = shrink(case, None);
    let shrunk_failure = run_case(&small, None);
    eprintln!("fuzz: minimal still-failing case ({:?}):", shrunk_failure);
    eprintln!("{small:#?}");
    ExitCode::FAILURE
}
