//! Differential fuzzing driver.
//!
//! ```text
//! cargo run --release -p consim-check --bin fuzz -- --cases 500 --seed 7
//! cargo run --release -p consim-check --bin fuzz -- --replay <case-seed>
//! ```
//!
//! Each case builds a small randomized machine + workload mix, runs it
//! through the engine with the counter audit enabled, and replays the
//! observed access stream through the naive reference model. On any
//! divergence the case seed is printed (replayable with `--replay`), the
//! case is shrunk to a minimal still-failing configuration, and the
//! process exits nonzero.

use consim_bench::cli::BenchFlags;
use consim_check::{run_case, shrink, CaseOutcome, FuzzCase};
use consim_types::rng::SimRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut flags = BenchFlags::from_env("fuzz");
    let parsed = (|| -> Result<(u64, u64, Option<u64>), String> {
        let cases = flags.take_u64("--cases")?.unwrap_or(500);
        let seed = flags.take_u64("--seed")?.unwrap_or(1);
        let replay = flags.take_u64("--replay")?;
        if let Some(extra) = flags.rest.first() {
            return Err(format!("unrecognized argument {extra:?}"));
        }
        Ok((cases, seed, replay))
    })();
    let (cases, seed, replay) = match parsed {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("fuzz: {msg}");
            eprintln!("usage: fuzz [--cases N] [--seed S] [--replay CASE_SEED]");
            return ExitCode::from(2);
        }
    };

    if let Some(case_seed) = replay {
        return run_one(case_seed, true);
    }

    let mut rng = SimRng::from_seed(seed).derive("check/cases");
    let mut total_steps = 0u64;
    for i in 0..cases {
        let case_seed = rng.next_u64();
        let case = FuzzCase::generate(case_seed);
        match run_case(&case, None) {
            CaseOutcome::Pass { steps } => total_steps += steps,
            failure => return report_failure(&case, &failure),
        }
        if (i + 1) % 100 == 0 {
            println!("fuzz: {}/{cases} cases passed", i + 1);
        }
    }
    println!(
        "fuzz: {cases} cases passed (seed {seed}, {total_steps} accesses compared, 0 divergences)"
    );
    ExitCode::SUCCESS
}

fn run_one(case_seed: u64, verbose: bool) -> ExitCode {
    let case = FuzzCase::generate(case_seed);
    if verbose {
        println!("fuzz: replaying case seed {case_seed}");
        println!("{case:#?}");
    }
    match run_case(&case, None) {
        CaseOutcome::Pass { steps } => {
            println!("fuzz: case seed {case_seed} passes ({steps} accesses compared)");
            ExitCode::SUCCESS
        }
        failure => report_failure(&case, &failure),
    }
}

fn report_failure(case: &FuzzCase, failure: &CaseOutcome) -> ExitCode {
    let kind = match failure {
        CaseOutcome::Divergence(msg) => format!("divergence: {msg}"),
        CaseOutcome::EngineError(msg) => format!("engine error: {msg}"),
        CaseOutcome::Pass { .. } => unreachable!("report_failure on a pass"),
    };
    eprintln!("fuzz: FAILURE on case seed {}", case.case_seed);
    eprintln!("fuzz: {kind}");
    eprintln!(
        "fuzz: replay with: cargo run -p consim-check --bin fuzz -- --replay {}",
        case.case_seed
    );
    eprintln!("fuzz: shrinking...");
    let small = shrink(case, None);
    let shrunk_failure = run_case(&small, None);
    eprintln!("fuzz: minimal still-failing case ({:?}):", shrunk_failure);
    eprintln!("{small:#?}");
    ExitCode::FAILURE
}
