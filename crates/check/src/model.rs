//! The naive reference model.
//!
//! A deliberately flat, obviously-correct re-implementation of the engine's
//! *content* semantics: which blocks sit in which caches in which MESI
//! states, and what the directory believes. It replays the engine's own
//! reference stream one [`AccessStep`] at a time and must reproduce, for
//! every step, the engine's hit/miss classification and the directory's
//! post-access owner/sharer view — and, at the end of the run, the per-VM
//! counters, LLC replication, and LLC occupancy.
//!
//! Nothing here is shared with the engine except the small value types
//! (`LineState`, `MissSource`): caches are vectors of `(block, state,
//! stamp)` tuples with a global logical clock instead of per-way recency
//! bits, the directory is a `BTreeMap` of owner/sharer sets, and mesh
//! distances are recomputed from first principles. No NoC timing, no
//! memory-controller calendars, no statistics plumbing — time does not
//! exist in this model, only contents.
//!
//! The model intentionally mirrors the engine's *tie-breaking* rules, which
//! are part of the simulated machine's definition (nearest clean supplier,
//! nearest replica bank, first-minimal on equal distance). See DESIGN.md §8.

use consim::metrics::MissSource;
use consim::observe::{AccessStep, StepOutcome};
use consim_cache::LineState;
use consim_types::config::MachineConfig;
use consim_types::{BankId, BlockAddr, CoreId};
use std::collections::{BTreeMap, BTreeSet};

/// Deliberately-wrong behaviors for mutation testing: each knob disables
/// one coherence action in the *model*, which must make the differential
/// check fail (a divergence is symmetric — if breaking the model is not
/// detected, breaking the engine would not be either).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Skip invalidating sharers' private caches on writes/upgrades.
    SkipInvalidations,
    /// Treat every directory read miss as served from below (never
    /// cache-to-cache).
    IgnoreOwners,
    /// Never downgrade a dirty owner on a read (leave it Modified).
    SkipOwnerDowngrade,
    /// Fill the LLC without honoring the per-VM way quotas (partitioned
    /// configurations only — a no-op divergence otherwise).
    IgnoreWayQuotas,
    /// Complete a write that hits a *Shared* private line as a plain hit,
    /// skipping the demotion to the upgrade transaction — the exact bug a
    /// broken engine fast path would have (the fast path must bail out to
    /// `coherence_transaction` whenever a write lacks permission).
    SkipFastPathDemotion,
}

/// One cache line as the model sees it.
#[derive(Debug, Clone, Copy)]
struct Slot {
    block: BlockAddr,
    state: LineState,
    /// Global logical time of the last recency touch; the minimum stamp in
    /// a full set is the LRU victim. Equivalent to the engine's per-way
    /// recency order because both touch exactly on hits and inserts.
    touched: u64,
}

/// A set-associative cache as flat per-set vectors, LRU by stamp.
#[derive(Debug, Clone)]
struct NaiveCache {
    num_sets: u64,
    ways: usize,
    sets: Vec<Vec<Slot>>,
}

impl NaiveCache {
    fn new(num_sets: usize, ways: usize) -> Self {
        Self {
            num_sets: num_sets as u64,
            ways,
            sets: vec![Vec::new(); num_sets],
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.raw() % self.num_sets) as usize
    }

    /// Lookup without a recency touch (the engine's `probe`/`contains`).
    fn probe(&self, block: BlockAddr) -> Option<LineState> {
        self.sets[self.set_of(block)]
            .iter()
            .find(|s| s.block == block)
            .map(|s| s.state)
    }

    /// Demand lookup: touches recency on a hit (the engine's `access`).
    fn access(&mut self, block: BlockAddr, now: u64) -> Option<LineState> {
        let set = self.set_of(block);
        let slot = self.sets[set].iter_mut().find(|s| s.block == block)?;
        slot.touched = now;
        Some(slot.state)
    }

    /// State change in place, no recency touch; absent blocks are ignored.
    fn set_state(&mut self, block: BlockAddr, state: LineState) {
        let set = self.set_of(block);
        if let Some(slot) = self.sets[set].iter_mut().find(|s| s.block == block) {
            slot.state = state;
        }
    }

    /// Fill: updates in place on re-insert, else appends, else evicts the
    /// minimum-stamp (LRU) slot. Returns the victim.
    fn insert(&mut self, block: BlockAddr, state: LineState, now: u64) -> Option<Slot> {
        let ways = self.ways;
        let idx = self.set_of(block);
        let set = &mut self.sets[idx];
        if let Some(slot) = set.iter_mut().find(|s| s.block == block) {
            slot.state = state;
            slot.touched = now;
            return None;
        }
        let fresh = Slot {
            block,
            state,
            touched: now,
        };
        if set.len() < ways {
            set.push(fresh);
            return None;
        }
        let lru = set
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.touched)
            .map(|(i, _)| i)
            .expect("full set is nonempty");
        let victim = set[lru];
        set[lru] = fresh;
        Some(victim)
    }

    /// Fill under a per-VM way quota — the model's view of the engine's
    /// masked `insert_in_ways`. Because the per-VM way masks are disjoint
    /// and every allocation is confined to the inserting VM's mask, a
    /// mask's ways only ever hold that VM's lines; "evict the LRU way
    /// inside the mask" is therefore exactly "evict the VM's LRU line in
    /// the set", and the mask width reduces to a line-count quota.
    fn insert_with_quota(
        &mut self,
        block: BlockAddr,
        state: LineState,
        now: u64,
        quota: usize,
    ) -> Option<Slot> {
        let idx = self.set_of(block);
        let set = &mut self.sets[idx];
        if let Some(slot) = set.iter_mut().find(|s| s.block == block) {
            slot.state = state;
            slot.touched = now;
            return None;
        }
        let fresh = Slot {
            block,
            state,
            touched: now,
        };
        let vm = block.vm();
        let occupied = set.iter().filter(|s| s.block.vm() == vm).count();
        if occupied < quota {
            set.push(fresh);
            return None;
        }
        let lru = set
            .iter()
            .enumerate()
            .filter(|(_, s)| s.block.vm() == vm)
            .min_by_key(|(_, s)| s.touched)
            .map(|(i, _)| i)
            .expect("quota ways are nonzero");
        let victim = set[lru];
        set[lru] = fresh;
        Some(victim)
    }

    /// Invalidate: removes the block if present.
    fn invalidate(&mut self, block: BlockAddr) {
        let set = self.set_of(block);
        self.sets[set].retain(|s| s.block != block);
    }

    fn lines(&self) -> impl Iterator<Item = &Slot> {
        self.sets.iter().flatten()
    }

    fn capacity(&self) -> usize {
        self.num_sets as usize * self.ways
    }
}

/// A directory entry: one Modified owner or a clean sharer set.
#[derive(Debug, Clone, Default)]
struct DirEntry {
    owner: Option<usize>,
    sharers: BTreeSet<usize>,
}

/// Flat full-map directory mirroring `consim_coherence::Directory`'s
/// transition function.
#[derive(Debug, Clone, Default)]
struct NaiveDirectory {
    entries: BTreeMap<u64, DirEntry>,
}

/// What the naive directory decided for one request.
struct DirOutcome {
    source: NaiveSource,
    invalidate: Vec<usize>,
    writeback: bool,
    exclusive: bool,
}

enum NaiveSource {
    Dirty(usize),
    Clean,
    Below,
    NoData,
}

impl NaiveDirectory {
    fn members(&self, block: BlockAddr) -> Vec<usize> {
        match self.entries.get(&block.raw()) {
            Some(e) => {
                let mut m: BTreeSet<usize> = e.sharers.clone();
                if let Some(o) = e.owner {
                    m.insert(o);
                }
                m.into_iter().collect()
            }
            None => Vec::new(),
        }
    }

    fn owner(&self, block: BlockAddr) -> Option<usize> {
        self.entries.get(&block.raw()).and_then(|e| e.owner)
    }

    fn handle(&mut self, requester: usize, block: BlockAddr, write: bool) -> DirOutcome {
        let entry = self.entries.entry(block.raw()).or_default();
        if !write {
            if let Some(owner) = entry.owner {
                entry.owner = None;
                entry.sharers.insert(owner);
                entry.sharers.insert(requester);
                DirOutcome {
                    source: NaiveSource::Dirty(owner),
                    invalidate: Vec::new(),
                    writeback: true,
                    exclusive: false,
                }
            } else if !entry.sharers.is_empty() {
                entry.sharers.insert(requester);
                DirOutcome {
                    source: NaiveSource::Clean,
                    invalidate: Vec::new(),
                    writeback: false,
                    exclusive: false,
                }
            } else {
                entry.sharers.insert(requester);
                DirOutcome {
                    source: NaiveSource::Below,
                    invalidate: Vec::new(),
                    writeback: false,
                    exclusive: true,
                }
            }
        } else if let Some(owner) = entry.owner {
            entry.owner = Some(requester);
            entry.sharers.clear();
            DirOutcome {
                source: NaiveSource::Dirty(owner),
                invalidate: vec![owner],
                writeback: false,
                exclusive: true,
            }
        } else if !entry.sharers.is_empty() {
            let has_other = entry.sharers.iter().any(|&c| c != requester);
            let invalidate: Vec<usize> = entry
                .sharers
                .iter()
                .copied()
                .filter(|&c| c != requester)
                .collect();
            entry.sharers.clear();
            entry.owner = Some(requester);
            DirOutcome {
                source: if has_other {
                    NaiveSource::Clean
                } else {
                    // Requester was the only sharer: silent upgrade.
                    NaiveSource::NoData
                },
                invalidate,
                writeback: false,
                exclusive: true,
            }
        } else {
            entry.owner = Some(requester);
            DirOutcome {
                source: NaiveSource::Below,
                invalidate: Vec::new(),
                writeback: false,
                exclusive: true,
            }
        }
    }

    /// The upgrade transition: requester already holds the line Shared.
    fn upgrade(&mut self, requester: usize, block: BlockAddr) -> Vec<usize> {
        let entry = self.entries.entry(block.raw()).or_default();
        let invalidate: Vec<usize> = entry
            .sharers
            .iter()
            .copied()
            .filter(|&c| c != requester)
            .collect();
        entry.owner = Some(requester);
        entry.sharers.clear();
        invalidate
    }

    fn evict(&mut self, core: usize, block: BlockAddr) {
        if let Some(entry) = self.entries.get_mut(&block.raw()) {
            if entry.owner == Some(core) {
                entry.owner = None;
            } else {
                entry.sharers.remove(&core);
            }
            if entry.owner.is_none() && entry.sharers.is_empty() {
                self.entries.remove(&block.raw());
            }
        }
    }
}

/// Per-VM counters the model accumulates, mirroring the engine's
/// `VmMetrics` counter fields (timing-dependent fields excluded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelCounters {
    pub refs: u64,
    pub writes: u64,
    pub l0_hits: u64,
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub c2c_l1_clean: u64,
    pub c2c_l1_dirty: u64,
    pub llc_local_hits: u64,
    pub llc_remote_clean: u64,
    pub llc_remote_dirty: u64,
    pub memory_fetches: u64,
    pub upgrades: u64,
    pub invalidations_received: u64,
}

/// The full naive machine: private L0/L1 per core, LLC banks, directory.
#[derive(Debug, Clone)]
pub struct RefModel {
    mesh_width: usize,
    cores_per_bank: usize,
    l0: Vec<NaiveCache>,
    l1: Vec<NaiveCache>,
    llc: Vec<NaiveCache>,
    directory: NaiveDirectory,
    counters: Vec<ModelCounters>,
    /// Per-VM LLC way quotas when way partitioning is active (the
    /// popcount of each VM's allowed-way mask).
    llc_quotas: Option<Vec<usize>>,
    /// Global logical clock for LRU stamps.
    now: u64,
    /// Injected bug for mutation testing, if any.
    mutation: Option<Mutation>,
}

impl RefModel {
    /// Builds an empty model of `machine` hosting `num_vms` VMs.
    pub fn new(machine: &MachineConfig, num_vms: usize) -> Self {
        let geom = |g: consim_types::config::CacheGeometry| (g.num_sets(), g.associativity);
        let (l0_sets, l0_ways) = geom(machine.l0);
        let (l1_sets, l1_ways) = geom(machine.l1);
        let bank = machine.llc_bank_geometry();
        let (llc_sets, llc_ways) = (bank.num_sets(), bank.associativity);
        Self {
            mesh_width: machine.mesh_width,
            cores_per_bank: machine.cores_per_bank(),
            l0: (0..machine.num_cores)
                .map(|_| NaiveCache::new(l0_sets, l0_ways))
                .collect(),
            l1: (0..machine.num_cores)
                .map(|_| NaiveCache::new(l1_sets, l1_ways))
                .collect(),
            llc: (0..machine.llc_banks())
                .map(|_| NaiveCache::new(llc_sets, llc_ways))
                .collect(),
            directory: NaiveDirectory::default(),
            counters: vec![ModelCounters::default(); num_vms],
            llc_quotas: machine
                .llc_partitioning
                .way_masks(llc_ways, num_vms)
                .expect("partitioning validated by the simulation builder")
                .map(|masks| masks.iter().map(|m| m.count_ones() as usize).collect()),
            now: 0,
            mutation: None,
        }
    }

    /// Advances the logical clock: one tick per recency-touching cache
    /// operation, so stamp order reproduces the engine's per-operation LRU
    /// order exactly (including multiple touches within one access).
    fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Installs a deliberate bug (mutation testing).
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = Some(mutation);
        self
    }

    /// Per-VM counters accumulated so far (measured steps only).
    pub fn counters(&self) -> &[ModelCounters] {
        &self.counters
    }

    /// Mirrors one LLC prewarm insertion.
    pub fn prewarm(&mut self, bank: BankId, block: BlockAddr) {
        self.fill_llc(bank.index(), block, LineState::Shared);
    }

    /// Total LLC lines and lines present in more than one bank — the
    /// model's view of the engine's `ReplicationSnapshot`.
    pub fn replication(&self) -> (u64, u64) {
        let mut copies: BTreeMap<u64, u32> = BTreeMap::new();
        let mut total = 0u64;
        for bank in &self.llc {
            for line in bank.lines() {
                *copies.entry(line.block.raw()).or_insert(0) += 1;
                total += 1;
            }
        }
        let replicated = self
            .llc
            .iter()
            .flat_map(|b| b.lines())
            .filter(|l| copies[&l.block.raw()] > 1)
            .count() as u64;
        (total, replicated)
    }

    /// `share[bank][vm]` of LLC capacity — the model's view of the
    /// engine's `OccupancySnapshot`, computed the same way (count over
    /// capacity) so agreement is exact.
    pub fn occupancy(&self, num_vms: usize) -> Vec<Vec<f64>> {
        self.llc
            .iter()
            .map(|bank| {
                let mut counts = vec![0u64; num_vms];
                for line in bank.lines() {
                    let vm = line.block.vm().index();
                    if vm < num_vms {
                        counts[vm] += 1;
                    }
                }
                let cap = bank.capacity().max(1) as f64;
                counts.iter().map(|&c| c as f64 / cap).collect()
            })
            .collect()
    }

    /// Replays one observed step; returns a divergence description if the
    /// model disagrees with the engine's classification or the directory's
    /// post-access state.
    ///
    /// # Errors
    ///
    /// The `Err` string names the first mismatching quantity.
    pub fn step(&mut self, step: &AccessStep) -> Result<(), String> {
        let computed = self.apply(step);
        if computed != step.outcome {
            return Err(format!(
                "outcome mismatch at {} core {} {}: engine {:?}, model {:?}",
                step.block,
                step.core.index(),
                if step.is_write { "write" } else { "read" },
                step.outcome,
                computed
            ));
        }
        let model_owner = self.directory.owner(step.block);
        let engine_owner = step.dir_owner.map(CoreId::index);
        if model_owner != engine_owner {
            return Err(format!(
                "directory owner mismatch at {}: engine {engine_owner:?}, model {model_owner:?}",
                step.block
            ));
        }
        let model_members = self.directory.members(step.block);
        let engine_members: Vec<usize> = step.dir_sharers.iter().map(CoreId::index).collect();
        if model_members != engine_members {
            return Err(format!(
                "directory sharers mismatch at {}: engine {engine_members:?}, model {model_members:?}",
                step.block
            ));
        }
        Ok(())
    }

    /// Replays the hierarchy walk for one reference and returns the model's
    /// classification. This is a direct, flat transcription of the
    /// protocol's *content* rules.
    fn apply(&mut self, step: &AccessStep) -> StepOutcome {
        let core = step.core.index();
        let vm = step.vm.index();
        let block = step.block;
        let write = step.is_write;
        if step.measuring {
            let c = &mut self.counters[vm];
            c.refs += 1;
            if write {
                c.writes += 1;
            }
        }

        // L0: hits serve reads and writable writes. The mutation mirrors a
        // broken engine fast path that treats *any* private hit as
        // servable, never demoting unwritable write hits to the upgrade
        // transaction.
        let skip_demotion = self.mutation == Some(Mutation::SkipFastPathDemotion);
        let t = self.tick();
        if let Some(state) = self.l0[core].access(block, t) {
            if !write || state.is_writable() || skip_demotion {
                if write {
                    self.l0[core].set_state(block, LineState::Modified);
                    self.l1[core].set_state(block, LineState::Modified);
                }
                if step.measuring {
                    self.counters[vm].l0_hits += 1;
                }
                return StepOutcome::L0Hit;
            }
        }
        // L1.
        let t = self.tick();
        if let Some(state) = self.l1[core].access(block, t) {
            if !write || state.is_writable() || skip_demotion {
                let new_state = if write { LineState::Modified } else { state };
                if write {
                    self.l1[core].set_state(block, LineState::Modified);
                }
                self.l1_fill_l0(core, block, new_state);
                if step.measuring {
                    self.counters[vm].l1_hits += 1;
                }
                return StepOutcome::L1Hit;
            }
            // Write hit on a Shared line: upgrade for exclusivity.
            let invalidate = self.directory.upgrade(core, block);
            self.invalidate_victims(vm, &invalidate, block, step.measuring);
            self.invalidate_llc_copies(block);
            self.l1[core].set_state(block, LineState::Modified);
            self.l0[core].set_state(block, LineState::Modified);
            if step.measuring {
                let c = &mut self.counters[vm];
                c.l1_misses += 1;
                c.upgrades += 1;
            }
            return StepOutcome::Miss(MissSource::Upgrade);
        }

        // Full directory transaction.
        let outcome = self.directory.handle(core, block, write);
        self.invalidate_victims(vm, &outcome.invalidate, block, step.measuring);
        let source = match outcome.source {
            NaiveSource::Dirty(owner) => {
                let owner = if self.mutation == Some(Mutation::IgnoreOwners) {
                    usize::MAX // pretend nobody owns it; fall through below
                } else {
                    owner
                };
                if owner == usize::MAX {
                    self.serve_below(core, block, write)
                } else {
                    if write {
                        self.invalidate_private(owner, block);
                    } else if self.mutation != Some(Mutation::SkipOwnerDowngrade) {
                        self.l1[owner].set_state(block, LineState::Shared);
                        self.l0[owner].set_state(block, LineState::Shared);
                    }
                    MissSource::RemoteL1Dirty
                }
            }
            NaiveSource::Clean => {
                // The engine serves from the *nearest* prior sharer; the
                // transfer itself does not change the supplier's state on a
                // read, and on a write the supplier was already invalidated
                // (idempotently re-invalidated by the engine).
                let supplier = self.nearest_prior_sharer(core, block, &outcome.invalidate);
                if write {
                    self.invalidate_private(supplier, block);
                }
                MissSource::RemoteL1Clean
            }
            NaiveSource::Below => self.serve_below(core, block, write),
            NaiveSource::NoData => MissSource::Upgrade,
        };

        // Post-dispatch LLC consistency, mirroring the engine: writers
        // leave no bank copies; read c2c transfers also fill the local bank.
        if write {
            self.invalidate_llc_copies(block);
        } else if matches!(
            source,
            MissSource::RemoteL1Dirty | MissSource::RemoteL1Clean
        ) {
            let bank = self.bank_of_core(core);
            self.fill_llc(bank, block, LineState::Shared);
        }

        if step.measuring {
            let c = &mut self.counters[vm];
            c.l1_misses += 1;
            match source {
                MissSource::RemoteL1Dirty => c.c2c_l1_dirty += 1,
                MissSource::RemoteL1Clean => c.c2c_l1_clean += 1,
                MissSource::LocalLlc => c.llc_local_hits += 1,
                MissSource::RemoteLlcDirty => c.llc_remote_dirty += 1,
                MissSource::RemoteLlcClean => c.llc_remote_clean += 1,
                MissSource::Memory => c.memory_fetches += 1,
                MissSource::Upgrade => c.upgrades += 1,
            }
        }

        // Install in the private hierarchy.
        if source != MissSource::Upgrade {
            let new_state = if write {
                LineState::Modified
            } else if outcome.exclusive {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            self.fill_l1(core, block, new_state);
        } else {
            self.l1[core].set_state(block, LineState::Modified);
            self.l0[core].set_state(block, LineState::Modified);
        }
        let _ = outcome.writeback; // memory-side only; no content effect
        StepOutcome::Miss(source)
    }

    /// Serves a miss from the LLC banks or memory, mirroring the engine's
    /// `serve_from_llc_or_memory` content effects.
    fn serve_below(&mut self, core: usize, block: BlockAddr, write: bool) -> MissSource {
        let my_bank = self.bank_of_core(core);
        let t = self.tick();
        if self.llc[my_bank].access(block, t).is_some() {
            if write {
                self.invalidate_llc_copies(block);
            }
            return MissSource::LocalLlc;
        }
        // Nearest other bank holding the block (first-minimal on ties,
        // like the engine's `min_by_key` over ascending bank ids).
        let remote = (0..self.llc.len())
            .filter(|&b| b != my_bank && self.llc[b].probe(block).is_some())
            .min_by_key(|&b| self.hops(self.bank_node(b), self.core_node(core)));
        if let Some(rb) = remote {
            let was_dirty = self.llc[rb]
                .probe(block)
                .map(LineState::is_dirty)
                .unwrap_or(false);
            if write {
                self.invalidate_llc_copies(block);
            } else {
                if was_dirty {
                    self.llc[rb].set_state(block, LineState::Shared);
                }
                self.fill_llc(my_bank, block, LineState::Shared);
            }
            return if was_dirty {
                MissSource::RemoteLlcDirty
            } else {
                MissSource::RemoteLlcClean
            };
        }
        if !write {
            self.fill_llc(my_bank, block, LineState::Shared);
        }
        MissSource::Memory
    }

    /// The engine's nearest-clean-supplier rule: among the sharers the
    /// directory knew *before* the request (excluding the requester),
    /// minimize mesh distance to the requester, first-minimal on ties.
    /// The prior sharers are the post-transition members plus any cores the
    /// transition invalidated, minus the requester.
    fn nearest_prior_sharer(&self, core: usize, block: BlockAddr, invalidated: &[usize]) -> usize {
        let mut prior: BTreeSet<usize> = self.directory.members(block).into_iter().collect();
        prior.extend(invalidated.iter().copied());
        prior.remove(&core);
        // On a write the transition removed every other sharer into
        // `invalidated`; on a read all priors remain members. Either way
        // `prior` is now exactly the engine's `prior_sharers - requester`.
        prior
            .into_iter()
            .min_by_key(|&c| self.hops(self.core_node(c), self.core_node(core)))
            .expect("clean transfer implies another sharer")
    }

    /// L1 fill with inclusive-L0 and directory bookkeeping, mirroring the
    /// engine's `fill_l1`.
    fn fill_l1(&mut self, core: usize, block: BlockAddr, state: LineState) {
        let t = self.tick();
        if let Some(victim) = self.l1[core].insert(block, state, t) {
            self.l0[core].invalidate(victim.block);
            self.directory.evict(core, victim.block);
            if victim.state.is_dirty() {
                let bank = self.bank_of_core(core);
                self.fill_llc(bank, victim.block, LineState::Modified);
            }
        }
        self.l1_fill_l0(core, block, state);
    }

    /// L0 fill: silent evictions (the engine's `fill_l0`).
    fn l1_fill_l0(&mut self, core: usize, block: BlockAddr, state: LineState) {
        let t = self.tick();
        self.l0[core].insert(block, state, t);
    }

    /// LLC fill, honoring the way quotas when partitioning is active;
    /// dirty victims write back to memory, which has no content
    /// representation here.
    fn fill_llc(&mut self, bank: usize, block: BlockAddr, state: LineState) {
        let t = self.tick();
        let quota = match &self.llc_quotas {
            Some(q) if self.mutation != Some(Mutation::IgnoreWayQuotas) => {
                q.get(block.vm().index()).copied()
            }
            _ => None,
        };
        match quota {
            Some(quota) => {
                self.llc[bank].insert_with_quota(block, state, t, quota);
            }
            None => {
                self.llc[bank].insert(block, state, t);
            }
        }
    }

    fn invalidate_private(&mut self, core: usize, block: BlockAddr) {
        self.l1[core].invalidate(block);
        self.l0[core].invalidate(block);
    }

    fn invalidate_llc_copies(&mut self, block: BlockAddr) {
        for bank in &mut self.llc {
            bank.invalidate(block);
        }
    }

    /// Invalidations fanned out by the directory; counted against the
    /// *requesting* VM, as the engine does.
    fn invalidate_victims(
        &mut self,
        vm: usize,
        victims: &[usize],
        block: BlockAddr,
        measured: bool,
    ) {
        for &victim in victims {
            if self.mutation != Some(Mutation::SkipInvalidations) {
                self.invalidate_private(victim, block);
            }
            if measured {
                self.counters[vm].invalidations_received += 1;
            }
        }
    }

    fn bank_of_core(&self, core: usize) -> usize {
        core / self.cores_per_bank
    }

    /// Mesh node of a core (identity mapping, like the engine's layout).
    fn core_node(&self, core: usize) -> usize {
        core
    }

    /// Mesh node an LLC bank attaches to (middle of its core group).
    fn bank_node(&self, bank: usize) -> usize {
        bank * self.cores_per_bank + self.cores_per_bank / 2
    }

    /// Manhattan distance on the row-major mesh.
    fn hops(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = (a % self.mesh_width, a / self.mesh_width);
        let (bx, by) = (b % self.mesh_width, b / self.mesh_width);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::VmId;

    fn machine() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::in_vm(VmId::new(0), n)
    }

    fn read_step(core: usize, block: BlockAddr) -> AccessStep {
        AccessStep {
            core: CoreId::new(core),
            vm: VmId::new(0),
            thread: consim_types::ThreadId::new(0),
            block,
            is_write: false,
            measuring: true,
            outcome: StepOutcome::Miss(MissSource::Memory),
            dir_owner: None,
            dir_sharers: consim_coherence::CoreSet::EMPTY,
        }
    }

    #[test]
    fn cold_read_goes_to_memory() {
        let mut m = RefModel::new(&machine(), 1);
        let step = read_step(0, blk(1));
        let out = m.apply(&step);
        assert_eq!(out, StepOutcome::Miss(MissSource::Memory));
        // Second access by the same core is an L0 hit.
        let out = m.apply(&read_step(0, blk(1)));
        assert_eq!(out, StepOutcome::L0Hit);
    }

    #[test]
    fn second_reader_is_clean_c2c() {
        let mut m = RefModel::new(&machine(), 1);
        m.apply(&read_step(0, blk(1)));
        let out = m.apply(&read_step(1, blk(1)));
        assert_eq!(out, StepOutcome::Miss(MissSource::RemoteL1Clean));
    }

    #[test]
    fn write_after_remote_read_is_dirty_transfer_chain() {
        let mut m = RefModel::new(&machine(), 1);
        let mut w = read_step(0, blk(1));
        w.is_write = true;
        m.apply(&w);
        assert_eq!(m.directory.owner(blk(1)), Some(0));
        // Remote read pulls it dirty and downgrades.
        let out = m.apply(&read_step(5, blk(1)));
        assert_eq!(out, StepOutcome::Miss(MissSource::RemoteL1Dirty));
        assert_eq!(m.directory.owner(blk(1)), None);
        assert_eq!(m.directory.members(blk(1)), vec![0, 5]);
    }

    #[test]
    fn naive_lru_matches_stamp_order() {
        let mut c = NaiveCache::new(1, 2);
        c.insert(blk(1), LineState::Shared, 1);
        c.insert(blk(2), LineState::Shared, 2);
        c.access(blk(1), 3);
        let victim = c.insert(blk(3), LineState::Shared, 4).expect("eviction");
        assert_eq!(victim.block, blk(2));
        assert!(c.probe(blk(1)).is_some());
    }

    #[test]
    fn probe_does_not_touch() {
        let mut c = NaiveCache::new(1, 2);
        c.insert(blk(1), LineState::Shared, 1);
        c.insert(blk(2), LineState::Shared, 2);
        assert!(c.probe(blk(1)).is_some());
        let victim = c.insert(blk(3), LineState::Shared, 3).expect("eviction");
        assert_eq!(victim.block, blk(1), "probe must not protect the LRU line");
    }

    #[test]
    fn replication_counts_multi_bank_blocks() {
        let mut m = RefModel::new(
            &machine().with_sharing(consim_types::config::SharingDegree::Private),
            1,
        );
        m.prewarm(BankId::new(0), blk(1));
        m.prewarm(BankId::new(1), blk(1));
        m.prewarm(BankId::new(2), blk(2));
        let (total, replicated) = m.replication();
        assert_eq!(total, 3);
        assert_eq!(replicated, 2);
    }
}
