//! The naive reference model.
//!
//! A deliberately flat, obviously-correct re-implementation of the engine's
//! *content* semantics: which blocks sit in which caches in which MESI
//! states, and what the directory believes. It replays the engine's own
//! reference stream one [`AccessStep`] at a time and must reproduce, for
//! every step, the engine's hit/miss classification and the directory's
//! post-access owner/sharer view — and, at the end of the run, the per-VM
//! counters, LLC replication, and LLC occupancy.
//!
//! Nothing here is shared with the engine except the small value types
//! (`LineState`, `MissSource`): caches are vectors of `(block, state,
//! stamp)` tuples with a global logical clock instead of per-way recency
//! bits, the directory is a `BTreeMap` of owner/sharer sets, and mesh
//! distances are recomputed from first principles. No NoC timing, no
//! memory-controller calendars, no statistics plumbing — time does not
//! exist in this model, only contents.
//!
//! The model intentionally mirrors the engine's *tie-breaking* rules, which
//! are part of the simulated machine's definition (nearest clean supplier,
//! nearest replica bank, first-minimal on equal distance). See DESIGN.md §8.

use consim::churn::{ChurnAction, ChurnDecision};
use consim::metrics::MissSource;
use consim::observe::{AccessStep, StepOutcome};
use consim::qos::{RepartitionDecision, VmClass};
use consim_cache::LineState;
use consim_types::config::{ChurnPolicy, DynamicPolicy, LlcPartitioning, MachineConfig};
use consim_types::rng::SimRng;
use consim_types::{BankId, BlockAddr, CoreId};
use std::collections::{BTreeMap, BTreeSet};

/// Deliberately-wrong behaviors for mutation testing: each knob disables
/// one coherence action in the *model*, which must make the differential
/// check fail (a divergence is symmetric — if breaking the model is not
/// detected, breaking the engine would not be either).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Skip invalidating sharers' private caches on writes/upgrades.
    SkipInvalidations,
    /// Treat every directory read miss as served from below (never
    /// cache-to-cache).
    IgnoreOwners,
    /// Never downgrade a dirty owner on a read (leave it Modified).
    SkipOwnerDowngrade,
    /// Fill the LLC without honoring the per-VM way quotas (partitioned
    /// configurations only — a no-op divergence otherwise).
    IgnoreWayQuotas,
    /// Complete a write that hits a *Shared* private line as a plain hit,
    /// skipping the demotion to the upgrade transaction — the exact bug a
    /// broken engine fast path would have (the fast path must bail out to
    /// `coherence_transaction` whenever a write lacks permission).
    SkipFastPathDemotion,
    /// Never apply (or re-derive) dynamic repartition decisions: the model
    /// keeps the initial equal-split masks forever. The first decision that
    /// actually moves a way must then surface as a mask mismatch — exactly
    /// what a broken engine that dropped the QoS feedback loop would look
    /// like from the other side (dynamic configurations only).
    IgnoreRepartition,
    /// Never process the birth–death departure branch: the model's mirror
    /// keeps every VM running forever. The engine's first `Retire` record
    /// then has no model counterpart and the per-boundary action comparison
    /// diverges — exactly what an engine that silently dropped retirements
    /// would look like from the other side (churned configurations only).
    IgnoreRetire,
    /// Rebind a migrating VM without scrubbing its private caches: stale
    /// L0/L1 lines and directory entries linger on the vacated cores. The
    /// boundary's invalidation counts (or the migrated VM's next access to
    /// a previously-cached block) must surface the divergence (churned
    /// configurations only).
    SkipMigrationInvalidation,
}

/// One cache line as the model sees it.
#[derive(Debug, Clone, Copy)]
struct Slot {
    block: BlockAddr,
    state: LineState,
    /// Global logical time of the last recency touch; the minimum stamp in
    /// a full set is the LRU victim. Equivalent to the engine's per-way
    /// recency order because both touch exactly on hits and inserts.
    touched: u64,
    /// Physical way index. Fills take the lowest free way and evictions
    /// reuse the victim's way, mirroring the engine — which makes the
    /// masked (dynamic-partitioning) fill path way-exact. The static paths
    /// never consult it.
    way: usize,
}

/// A set-associative cache as flat per-set vectors, LRU by stamp.
#[derive(Debug, Clone)]
struct NaiveCache {
    num_sets: u64,
    ways: usize,
    sets: Vec<Vec<Slot>>,
}

impl NaiveCache {
    fn new(num_sets: usize, ways: usize) -> Self {
        Self {
            num_sets: num_sets as u64,
            ways,
            sets: vec![Vec::new(); num_sets],
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.raw() % self.num_sets) as usize
    }

    /// Lookup without a recency touch (the engine's `probe`/`contains`).
    fn probe(&self, block: BlockAddr) -> Option<LineState> {
        self.sets[self.set_of(block)]
            .iter()
            .find(|s| s.block == block)
            .map(|s| s.state)
    }

    /// Demand lookup: touches recency on a hit (the engine's `access`).
    fn access(&mut self, block: BlockAddr, now: u64) -> Option<LineState> {
        let set = self.set_of(block);
        let slot = self.sets[set].iter_mut().find(|s| s.block == block)?;
        slot.touched = now;
        Some(slot.state)
    }

    /// State change in place, no recency touch; absent blocks are ignored.
    fn set_state(&mut self, block: BlockAddr, state: LineState) {
        let set = self.set_of(block);
        if let Some(slot) = self.sets[set].iter_mut().find(|s| s.block == block) {
            slot.state = state;
        }
    }

    /// Lowest way index in `mask` that no slot of `set` occupies.
    fn free_way(set: &[Slot], ways: usize, mask: u64) -> Option<usize> {
        let used = set.iter().fold(0u64, |m, s| m | 1 << s.way);
        (0..ways).find(|&w| mask >> w & 1 == 1 && used >> w & 1 == 0)
    }

    /// Fill: updates in place on re-insert, else takes the lowest free
    /// way, else evicts the minimum-stamp (LRU) slot. Returns the victim.
    fn insert(&mut self, block: BlockAddr, state: LineState, now: u64) -> Option<Slot> {
        let ways = self.ways;
        let idx = self.set_of(block);
        let set = &mut self.sets[idx];
        if let Some(slot) = set.iter_mut().find(|s| s.block == block) {
            slot.state = state;
            slot.touched = now;
            return None;
        }
        let mut fresh = Slot {
            block,
            state,
            touched: now,
            way: 0,
        };
        if let Some(way) = Self::free_way(set, ways, u64::MAX) {
            fresh.way = way;
            set.push(fresh);
            return None;
        }
        let lru = set
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.touched)
            .map(|(i, _)| i)
            .expect("full set is nonempty");
        let victim = set[lru];
        fresh.way = victim.way;
        set[lru] = fresh;
        Some(victim)
    }

    /// Fill under a per-VM way quota — the model's view of the engine's
    /// masked `insert_in_ways`. Because the per-VM way masks are disjoint
    /// and every allocation is confined to the inserting VM's mask, a
    /// mask's ways only ever hold that VM's lines; "evict the LRU way
    /// inside the mask" is therefore exactly "evict the VM's LRU line in
    /// the set", and the mask width reduces to a line-count quota.
    fn insert_with_quota(
        &mut self,
        block: BlockAddr,
        state: LineState,
        now: u64,
        quota: usize,
    ) -> Option<Slot> {
        let idx = self.set_of(block);
        let set = &mut self.sets[idx];
        if let Some(slot) = set.iter_mut().find(|s| s.block == block) {
            slot.state = state;
            slot.touched = now;
            return None;
        }
        let mut fresh = Slot {
            block,
            state,
            touched: now,
            way: 0,
        };
        let vm = block.vm();
        let occupied = set.iter().filter(|s| s.block.vm() == vm).count();
        if occupied < quota {
            fresh.way = Self::free_way(set, self.ways, u64::MAX)
                .expect("quotas sum to the associativity, so a slot is free");
            set.push(fresh);
            return None;
        }
        let lru = set
            .iter()
            .enumerate()
            .filter(|(_, s)| s.block.vm() == vm)
            .min_by_key(|(_, s)| s.touched)
            .map(|(i, _)| i)
            .expect("quota ways are nonzero");
        let victim = set[lru];
        fresh.way = victim.way;
        set[lru] = fresh;
        Some(victim)
    }

    /// Fill confined to the ways in `mask` — the way-exact mirror of the
    /// engine's `insert_in_ways`, used for *dynamic* partitioning, where
    /// masks change while the cache is occupied and the count-based quota
    /// reduction of [`NaiveCache::insert_with_quota`] no longer holds (a
    /// VM's lines linger in ways it lost until the new owner evicts them).
    /// A block present anywhere in the set (even outside the mask) updates
    /// in place; otherwise the lowest allowed free way is taken; otherwise
    /// the LRU line among the masked ways — whoever it belongs to — is
    /// evicted.
    fn insert_masked(
        &mut self,
        block: BlockAddr,
        state: LineState,
        now: u64,
        mask: u64,
    ) -> Option<Slot> {
        let ways = self.ways;
        let idx = self.set_of(block);
        let set = &mut self.sets[idx];
        if let Some(slot) = set.iter_mut().find(|s| s.block == block) {
            slot.state = state;
            slot.touched = now;
            return None;
        }
        let mut fresh = Slot {
            block,
            state,
            touched: now,
            way: 0,
        };
        if let Some(way) = Self::free_way(set, ways, mask) {
            fresh.way = way;
            set.push(fresh);
            return None;
        }
        let lru = set
            .iter()
            .enumerate()
            .filter(|(_, s)| mask >> s.way & 1 == 1)
            .min_by_key(|(_, s)| s.touched)
            .map(|(i, _)| i)
            .expect("mask selects an occupied way");
        let victim = set[lru];
        fresh.way = victim.way;
        set[lru] = fresh;
        Some(victim)
    }

    /// Invalidate: removes the block if present.
    fn invalidate(&mut self, block: BlockAddr) {
        let set = self.set_of(block);
        self.sets[set].retain(|s| s.block != block);
    }

    fn lines(&self) -> impl Iterator<Item = &Slot> {
        self.sets.iter().flatten()
    }

    fn capacity(&self) -> usize {
        self.num_sets as usize * self.ways
    }
}

/// A directory entry: one Modified owner or a clean sharer set.
#[derive(Debug, Clone, Default)]
struct DirEntry {
    owner: Option<usize>,
    sharers: BTreeSet<usize>,
}

/// Flat full-map directory mirroring `consim_coherence::Directory`'s
/// transition function.
#[derive(Debug, Clone, Default)]
struct NaiveDirectory {
    entries: BTreeMap<u64, DirEntry>,
}

/// What the naive directory decided for one request.
struct DirOutcome {
    source: NaiveSource,
    invalidate: Vec<usize>,
    writeback: bool,
    exclusive: bool,
}

enum NaiveSource {
    Dirty(usize),
    Clean,
    Below,
    NoData,
}

impl NaiveDirectory {
    fn members(&self, block: BlockAddr) -> Vec<usize> {
        match self.entries.get(&block.raw()) {
            Some(e) => {
                let mut m: BTreeSet<usize> = e.sharers.clone();
                if let Some(o) = e.owner {
                    m.insert(o);
                }
                m.into_iter().collect()
            }
            None => Vec::new(),
        }
    }

    fn owner(&self, block: BlockAddr) -> Option<usize> {
        self.entries.get(&block.raw()).and_then(|e| e.owner)
    }

    fn handle(&mut self, requester: usize, block: BlockAddr, write: bool) -> DirOutcome {
        let entry = self.entries.entry(block.raw()).or_default();
        if !write {
            if let Some(owner) = entry.owner {
                entry.owner = None;
                entry.sharers.insert(owner);
                entry.sharers.insert(requester);
                DirOutcome {
                    source: NaiveSource::Dirty(owner),
                    invalidate: Vec::new(),
                    writeback: true,
                    exclusive: false,
                }
            } else if !entry.sharers.is_empty() {
                entry.sharers.insert(requester);
                DirOutcome {
                    source: NaiveSource::Clean,
                    invalidate: Vec::new(),
                    writeback: false,
                    exclusive: false,
                }
            } else {
                entry.sharers.insert(requester);
                DirOutcome {
                    source: NaiveSource::Below,
                    invalidate: Vec::new(),
                    writeback: false,
                    exclusive: true,
                }
            }
        } else if let Some(owner) = entry.owner {
            entry.owner = Some(requester);
            entry.sharers.clear();
            DirOutcome {
                source: NaiveSource::Dirty(owner),
                invalidate: vec![owner],
                writeback: false,
                exclusive: true,
            }
        } else if !entry.sharers.is_empty() {
            let has_other = entry.sharers.iter().any(|&c| c != requester);
            let invalidate: Vec<usize> = entry
                .sharers
                .iter()
                .copied()
                .filter(|&c| c != requester)
                .collect();
            entry.sharers.clear();
            entry.owner = Some(requester);
            DirOutcome {
                source: if has_other {
                    NaiveSource::Clean
                } else {
                    // Requester was the only sharer: silent upgrade.
                    NaiveSource::NoData
                },
                invalidate,
                writeback: false,
                exclusive: true,
            }
        } else {
            entry.owner = Some(requester);
            DirOutcome {
                source: NaiveSource::Below,
                invalidate: Vec::new(),
                writeback: false,
                exclusive: true,
            }
        }
    }

    /// The upgrade transition: requester already holds the line Shared.
    fn upgrade(&mut self, requester: usize, block: BlockAddr) -> Vec<usize> {
        let entry = self.entries.entry(block.raw()).or_default();
        let invalidate: Vec<usize> = entry
            .sharers
            .iter()
            .copied()
            .filter(|&c| c != requester)
            .collect();
        entry.owner = Some(requester);
        entry.sharers.clear();
        invalidate
    }

    fn evict(&mut self, core: usize, block: BlockAddr) {
        if let Some(entry) = self.entries.get_mut(&block.raw()) {
            if entry.owner == Some(core) {
                entry.owner = None;
            } else {
                entry.sharers.remove(&core);
            }
            if entry.owner.is_none() && entry.sharers.is_empty() {
                self.entries.remove(&block.raw());
            }
        }
    }
}

/// Per-VM counters the model accumulates, mirroring the engine's
/// `VmMetrics` counter fields (timing-dependent fields excluded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelCounters {
    pub refs: u64,
    pub writes: u64,
    pub l0_hits: u64,
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub c2c_l1_clean: u64,
    pub c2c_l1_dirty: u64,
    pub llc_local_hits: u64,
    pub llc_remote_clean: u64,
    pub llc_remote_dirty: u64,
    pub memory_fetches: u64,
    pub upgrades: u64,
    pub invalidations_received: u64,
}

/// Independent flat re-derivation of the engine's dynamic repartitioning
/// controller (`consim::qos::QosController`). It consumes only quantities
/// the model can vouch for — its own cumulative counters and LLC line
/// counts — plus the engine-reported epoch timing (time does not exist in
/// this model), and must reproduce every decision's classification, EWMA
/// vector, and way masks bit-for-bit. The arithmetic is the documented
/// fixed-point procedure (permille EWMA, largest-remainder apportionment,
/// single-way steps), transcribed here without sharing any code with the
/// engine's controller.
#[derive(Debug, Clone)]
struct NaiveQos {
    policy: DynamicPolicy,
    ways: u64,
    total_lines: u64,
    quotas: Vec<u64>,
    ewma: Vec<u64>,
    best_cpkr: Vec<u64>,
    /// Cumulative `[refs, l1_misses, memory_fetches]` at the previous
    /// boundary, per VM.
    prev: Vec<[u64; 3]>,
    /// Cycle of the previous decision (None before the first), used to
    /// cross-check the engine's reported `elapsed`.
    last_at: Option<u64>,
    epochs: u64,
}

fn sat64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

impl NaiveQos {
    fn new(policy: DynamicPolicy, ways: usize, num_vms: usize, total_lines: u64) -> Self {
        let base = ways / num_vms;
        let extra = ways % num_vms;
        Self {
            policy,
            ways: ways as u64,
            total_lines,
            quotas: (0..num_vms)
                .map(|vm| (base + usize::from(vm < extra)) as u64)
                .collect(),
            ewma: vec![1000; num_vms],
            best_cpkr: vec![u64::MAX; num_vms],
            prev: vec![[0; 3]; num_vms],
            last_at: None,
            epochs: 0,
        }
    }

    /// Contiguous masks from the current quotas: VM 0 takes the lowest
    /// ways, VM 1 the next block, and so on.
    fn masks(&self) -> Vec<u64> {
        let mut base = 0u32;
        self.quotas
            .iter()
            .map(|&q| {
                let mask = if q >= 64 {
                    u64::MAX
                } else {
                    ((1u64 << q) - 1) << base
                };
                base += q as u32;
                mask
            })
            .collect()
    }

    /// One decision from epoch deltas and current occupancy; returns the
    /// per-VM classes, the updated EWMA vector, and the new masks.
    fn decide(
        &mut self,
        elapsed: u64,
        refs_d: &[u64],
        l1_d: &[u64],
        mem_d: &[u64],
        occ: &[u64],
    ) -> (Vec<VmClass>, Vec<u64>, Vec<u64>) {
        let n = self.quotas.len();
        self.epochs += 1;
        let mut classes = vec![VmClass::Light; n];
        for vm in 0..n {
            if refs_d[vm] == 0 {
                // No progress signal: EWMA untouched, ways up for grabs.
                continue;
            }
            let cpkr = sat64(u128::from(elapsed) * 1000 / u128::from(refs_d[vm]));
            self.best_cpkr[vm] = self.best_cpkr[vm].min(cpkr);
            let best = self.best_cpkr[vm].max(1);
            let slow = sat64(u128::from(cpkr) * 1000 / u128::from(best));
            let p = u128::from(self.policy.ewma_permille);
            self.ewma[vm] =
                sat64((p * u128::from(slow) + (1000 - p) * u128::from(self.ewma[vm])) / 1000);

            let mpkr = u128::from(l1_d[vm]) * 1000 / u128::from(refs_d[vm]);
            let occ_ways =
                u128::from(self.ways) * u128::from(occ[vm]) / u128::from(self.total_lines.max(1));
            let mem_share = u128::from(mem_d[vm]) * 1000 / u128::from(l1_d[vm].max(1));
            classes[vm] = if mpkr < u128::from(self.policy.light_miss_permille) || occ_ways == 0 {
                VmClass::Light
            } else if mem_share > u128::from(self.policy.stream_memory_permille) {
                VmClass::Streaming
            } else {
                VmClass::CacheSensitive
            };
        }

        let spread =
            self.ewma.iter().max().unwrap_or(&1000) - self.ewma.iter().min().unwrap_or(&1000);
        if spread > u64::from(self.policy.deadband_milli) {
            // Targets: min_ways each, pool largest-remainder-proportional
            // to the EWMA of cache-sensitive VMs (everyone else weight 0);
            // all weights zero falls back to the equal split with the
            // remainder on the first VMs.
            let min = u64::from(self.policy.min_ways);
            let pool = self.ways - min * n as u64;
            let weights: Vec<u64> = (0..n)
                .map(|vm| {
                    if classes[vm] == VmClass::CacheSensitive {
                        self.ewma[vm]
                    } else {
                        0
                    }
                })
                .collect();
            let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
            let mut targets = vec![0u64; n];
            if total == 0 {
                let base = pool / n as u64;
                let extra = pool % n as u64;
                for (vm, t) in targets.iter_mut().enumerate() {
                    *t = min + base + u64::from((vm as u64) < extra);
                }
            } else {
                let mut assigned = 0u64;
                let mut rems: Vec<(u128, usize)> = Vec::with_capacity(n);
                for vm in 0..n {
                    let prod = u128::from(pool) * u128::from(weights[vm]);
                    let share = prod.checked_div(total).unwrap_or(0) as u64;
                    targets[vm] = min + share;
                    assigned += share;
                    rems.push((prod.checked_rem(total).unwrap_or(0), vm));
                }
                rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                for &(_, vm) in rems.iter().take((pool - assigned) as usize) {
                    targets[vm] += 1;
                }
            }
            // At most max_step single-way moves: largest surplus donates to
            // largest deficit, ties to the lowest VM id, floors respected.
            for _ in 0..self.policy.max_step {
                let mut donor: Option<(u64, usize)> = None;
                let mut recipient: Option<(u64, usize)> = None;
                for (vm, (&cur, &tgt)) in self.quotas.iter().zip(&targets).enumerate() {
                    if cur > tgt && cur > min && donor.is_none_or(|(s, _)| cur - tgt > s) {
                        donor = Some((cur - tgt, vm));
                    }
                    if tgt > cur && recipient.is_none_or(|(d, _)| tgt - cur > d) {
                        recipient = Some((tgt - cur, vm));
                    }
                }
                let (Some((_, from)), Some((_, to))) = (donor, recipient) else {
                    break;
                };
                self.quotas[from] -= 1;
                self.quotas[to] += 1;
            }
        }
        (classes, self.ewma.clone(), self.masks())
    }
}

/// Independent flat re-derivation of the engine's VM lifecycle machinery
/// (`consim::churn::ChurnState` plus the engine's boundary handler). The
/// mirror re-derives every churn boundary from scratch: the two permille
/// draws per VM come from its own transcription of the draw protocol (a
/// fresh stream from the root seed and the epoch ordinal), the action each
/// VM takes is recomputed from the mirror's own core bindings and running
/// population, and scrub invalidation counts and writeback lists come from
/// the *model's* private caches. Nothing is adopted from the engine's
/// record — it is only compared against, field for field.
///
/// The one quantity taken from outside is the initial placement: which
/// cores the initially-active VMs start on is decided by the scheduling
/// policy (upstream of churn, possibly seeded-random), so the mirror learns
/// those bindings from the observed access stream before the first
/// boundary — every bound core issues its first access at the phase-start
/// cycle, strictly before any boundary can fire — and maintains them
/// exclusively through its own decisions afterwards.
#[derive(Debug, Clone)]
struct NaiveChurn {
    policy: ChurnPolicy,
    /// The simulation seed the draw streams derive from.
    seed: u64,
    /// Per-VM thread counts (spawn/migration feasibility).
    vm_threads: Vec<usize>,
    /// Core → running VM. `None` is a free core.
    core_vm: Vec<Option<usize>>,
    /// Per-VM running flags.
    active: Vec<bool>,
    /// Churn boundaries verified so far.
    epochs: u64,
}

impl NaiveChurn {
    fn new(policy: ChurnPolicy, seed: u64, vm_threads: Vec<usize>, num_cores: usize) -> Self {
        let active = (0..vm_threads.len())
            .map(|vm| vm < policy.initial_active)
            .collect();
        Self {
            policy,
            seed,
            vm_threads,
            core_vm: vec![None; num_cores],
            active,
            epochs: 0,
        }
    }

    fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Free cores ascending, optionally intersected with the migration
    /// allowlist — the engine's `free_cores`, recomputed from the mirror.
    fn free_cores(&self, targets: Option<&[usize]>) -> Vec<usize> {
        (0..self.core_vm.len())
            .filter(|&core| self.core_vm[core].is_none())
            .filter(|&core| targets.is_none_or(|t| t.contains(&core)))
            .collect()
    }

    /// Cores the mirror binds to `vm`, ascending.
    fn cores_of(&self, vm: usize) -> Vec<usize> {
        (0..self.core_vm.len())
            .filter(|&core| self.core_vm[core] == Some(vm))
            .collect()
    }
}

/// The full naive machine: private L0/L1 per core, LLC banks, directory.
#[derive(Debug, Clone)]
pub struct RefModel {
    mesh_width: usize,
    cores_per_bank: usize,
    l0: Vec<NaiveCache>,
    l1: Vec<NaiveCache>,
    llc: Vec<NaiveCache>,
    directory: NaiveDirectory,
    counters: Vec<ModelCounters>,
    /// Per-VM LLC way quotas under *static* way partitioning (the popcount
    /// of each VM's allowed-way mask).
    llc_quotas: Option<Vec<usize>>,
    /// Current per-VM way masks under *dynamic* partitioning; swapped by
    /// [`RefModel::repartition`] as decisions are verified.
    llc_masks: Option<Vec<u64>>,
    /// Independent controller mirror, dynamic partitioning only.
    qos: Option<NaiveQos>,
    /// Independent lifecycle mirror, churned machines only.
    churn: Option<NaiveChurn>,
    /// Global logical clock for LRU stamps.
    now: u64,
    /// Injected bug for mutation testing, if any.
    mutation: Option<Mutation>,
}

impl RefModel {
    /// Builds an empty model of `machine` hosting `num_vms` VMs.
    pub fn new(machine: &MachineConfig, num_vms: usize) -> Self {
        let geom = |g: consim_types::config::CacheGeometry| (g.num_sets(), g.associativity);
        let (l0_sets, l0_ways) = geom(machine.l0);
        let (l1_sets, l1_ways) = geom(machine.l1);
        let bank = machine.llc_bank_geometry();
        let (llc_sets, llc_ways) = (bank.num_sets(), bank.associativity);
        let masks = machine
            .llc_partitioning
            .way_masks(llc_ways, num_vms)
            .expect("partitioning validated by the simulation builder");
        let (llc_quotas, llc_masks, qos) = match &machine.llc_partitioning {
            LlcPartitioning::Dynamic(policy) => {
                let total_lines = (machine.llc_banks() * bank.num_lines()) as u64;
                (
                    None,
                    masks,
                    Some(NaiveQos::new(
                        policy.clone(),
                        llc_ways,
                        num_vms,
                        total_lines,
                    )),
                )
            }
            _ => (
                masks.map(|m| m.iter().map(|m| m.count_ones() as usize).collect()),
                None,
                None,
            ),
        };
        Self {
            mesh_width: machine.mesh_width,
            cores_per_bank: machine.cores_per_bank(),
            l0: (0..machine.num_cores)
                .map(|_| NaiveCache::new(l0_sets, l0_ways))
                .collect(),
            l1: (0..machine.num_cores)
                .map(|_| NaiveCache::new(l1_sets, l1_ways))
                .collect(),
            llc: (0..machine.llc_banks())
                .map(|_| NaiveCache::new(llc_sets, llc_ways))
                .collect(),
            directory: NaiveDirectory::default(),
            counters: vec![ModelCounters::default(); num_vms],
            llc_quotas,
            llc_masks,
            qos,
            churn: None,
            now: 0,
            mutation: None,
        }
    }

    /// Activates the lifecycle mirror for a churned machine. `seed` is the
    /// simulation seed (the draw streams derive from it) and `vm_threads`
    /// the per-VM thread counts. Must be called before the run when the
    /// machine carries a [`ChurnPolicy`]; without it, the first
    /// [`RefModel::churn`] call reports a divergence.
    pub fn with_churn(mut self, policy: ChurnPolicy, seed: u64, vm_threads: Vec<usize>) -> Self {
        let num_cores = self.l1.len();
        self.churn = Some(NaiveChurn::new(policy, seed, vm_threads, num_cores));
        self
    }

    /// Advances the logical clock: one tick per recency-touching cache
    /// operation, so stamp order reproduces the engine's per-operation LRU
    /// order exactly (including multiple touches within one access).
    fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Installs a deliberate bug (mutation testing).
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = Some(mutation);
        self
    }

    /// Per-VM counters accumulated so far (measured steps only).
    pub fn counters(&self) -> &[ModelCounters] {
        &self.counters
    }

    /// Mirrors one LLC prewarm insertion.
    pub fn prewarm(&mut self, bank: BankId, block: BlockAddr) {
        self.fill_llc(bank.index(), block, LineState::Shared);
    }

    /// Total LLC lines and lines present in more than one bank — the
    /// model's view of the engine's `ReplicationSnapshot`.
    pub fn replication(&self) -> (u64, u64) {
        let mut copies: BTreeMap<u64, u32> = BTreeMap::new();
        let mut total = 0u64;
        for bank in &self.llc {
            for line in bank.lines() {
                *copies.entry(line.block.raw()).or_insert(0) += 1;
                total += 1;
            }
        }
        let replicated = self
            .llc
            .iter()
            .flat_map(|b| b.lines())
            .filter(|l| copies[&l.block.raw()] > 1)
            .count() as u64;
        (total, replicated)
    }

    /// `share[bank][vm]` of LLC capacity — the model's view of the
    /// engine's `OccupancySnapshot`, computed the same way (count over
    /// capacity) so agreement is exact.
    pub fn occupancy(&self, num_vms: usize) -> Vec<Vec<f64>> {
        self.llc
            .iter()
            .map(|bank| {
                let mut counts = vec![0u64; num_vms];
                for line in bank.lines() {
                    let vm = line.block.vm().index();
                    if vm < num_vms {
                        counts[vm] += 1;
                    }
                }
                let cap = bank.capacity().max(1) as f64;
                counts.iter().map(|&c| c as f64 / cap).collect()
            })
            .collect()
    }

    /// Replays one observed step; returns a divergence description if the
    /// model disagrees with the engine's classification or the directory's
    /// post-access state.
    ///
    /// # Errors
    ///
    /// The `Err` string names the first mismatching quantity.
    pub fn step(&mut self, step: &AccessStep) -> Result<(), String> {
        if let Some(ch) = &mut self.churn {
            // Before the first boundary the stream *teaches* the mirror the
            // initial placement; from then on it *checks* it — an access
            // from a core the mirror considers free or bound elsewhere is
            // itself a lifecycle divergence.
            let core = step.core.index();
            let vm = step.vm.index();
            match ch.core_vm[core] {
                Some(bound) if bound == vm => {}
                None if ch.epochs == 0 => ch.core_vm[core] = Some(vm),
                bound => {
                    return Err(format!(
                        "churn binding mismatch: core {core} issued for vm {vm}, \
                         model binds {bound:?}"
                    ));
                }
            }
        }
        let computed = self.apply(step);
        if computed != step.outcome {
            return Err(format!(
                "outcome mismatch at {} core {} {}: engine {:?}, model {:?}",
                step.block,
                step.core.index(),
                if step.is_write { "write" } else { "read" },
                step.outcome,
                computed
            ));
        }
        let model_owner = self.directory.owner(step.block);
        let engine_owner = step.dir_owner.map(CoreId::index);
        if model_owner != engine_owner {
            return Err(format!(
                "directory owner mismatch at {}: engine {engine_owner:?}, model {model_owner:?}",
                step.block
            ));
        }
        let model_members = self.directory.members(step.block);
        let engine_members: Vec<usize> = step.dir_sharers.iter().map(CoreId::index).collect();
        if model_members != engine_members {
            return Err(format!(
                "directory sharers mismatch at {}: engine {engine_members:?}, model {model_members:?}",
                step.block
            ));
        }
        Ok(())
    }

    /// Replays the hierarchy walk for one reference and returns the model's
    /// classification. This is a direct, flat transcription of the
    /// protocol's *content* rules.
    fn apply(&mut self, step: &AccessStep) -> StepOutcome {
        let core = step.core.index();
        let vm = step.vm.index();
        let block = step.block;
        let write = step.is_write;
        if step.measuring {
            let c = &mut self.counters[vm];
            c.refs += 1;
            if write {
                c.writes += 1;
            }
        }

        // L0: hits serve reads and writable writes. The mutation mirrors a
        // broken engine fast path that treats *any* private hit as
        // servable, never demoting unwritable write hits to the upgrade
        // transaction.
        let skip_demotion = self.mutation == Some(Mutation::SkipFastPathDemotion);
        let t = self.tick();
        if let Some(state) = self.l0[core].access(block, t) {
            if !write || state.is_writable() || skip_demotion {
                if write {
                    self.l0[core].set_state(block, LineState::Modified);
                    self.l1[core].set_state(block, LineState::Modified);
                }
                if step.measuring {
                    self.counters[vm].l0_hits += 1;
                }
                return StepOutcome::L0Hit;
            }
        }
        // L1.
        let t = self.tick();
        if let Some(state) = self.l1[core].access(block, t) {
            if !write || state.is_writable() || skip_demotion {
                let new_state = if write { LineState::Modified } else { state };
                if write {
                    self.l1[core].set_state(block, LineState::Modified);
                }
                self.l1_fill_l0(core, block, new_state);
                if step.measuring {
                    self.counters[vm].l1_hits += 1;
                }
                return StepOutcome::L1Hit;
            }
            // Write hit on a Shared line: upgrade for exclusivity.
            let invalidate = self.directory.upgrade(core, block);
            self.invalidate_victims(vm, &invalidate, block, step.measuring);
            self.invalidate_llc_copies(block);
            self.l1[core].set_state(block, LineState::Modified);
            self.l0[core].set_state(block, LineState::Modified);
            if step.measuring {
                let c = &mut self.counters[vm];
                c.l1_misses += 1;
                c.upgrades += 1;
            }
            return StepOutcome::Miss(MissSource::Upgrade);
        }

        // Full directory transaction.
        let outcome = self.directory.handle(core, block, write);
        self.invalidate_victims(vm, &outcome.invalidate, block, step.measuring);
        let source = match outcome.source {
            NaiveSource::Dirty(owner) => {
                let owner = if self.mutation == Some(Mutation::IgnoreOwners) {
                    usize::MAX // pretend nobody owns it; fall through below
                } else {
                    owner
                };
                if owner == usize::MAX {
                    self.serve_below(core, block, write)
                } else {
                    if write {
                        self.invalidate_private(owner, block);
                    } else if self.mutation != Some(Mutation::SkipOwnerDowngrade) {
                        self.l1[owner].set_state(block, LineState::Shared);
                        self.l0[owner].set_state(block, LineState::Shared);
                    }
                    MissSource::RemoteL1Dirty
                }
            }
            NaiveSource::Clean => {
                // The engine serves from the *nearest* prior sharer; the
                // transfer itself does not change the supplier's state on a
                // read, and on a write the supplier was already invalidated
                // (idempotently re-invalidated by the engine).
                let supplier = self.nearest_prior_sharer(core, block, &outcome.invalidate);
                if write {
                    self.invalidate_private(supplier, block);
                }
                MissSource::RemoteL1Clean
            }
            NaiveSource::Below => self.serve_below(core, block, write),
            NaiveSource::NoData => MissSource::Upgrade,
        };

        // Post-dispatch LLC consistency, mirroring the engine: writers
        // leave no bank copies; read c2c transfers also fill the local bank.
        if write {
            self.invalidate_llc_copies(block);
        } else if matches!(
            source,
            MissSource::RemoteL1Dirty | MissSource::RemoteL1Clean
        ) {
            let bank = self.bank_of_core(core);
            self.fill_llc(bank, block, LineState::Shared);
        }

        if step.measuring {
            let c = &mut self.counters[vm];
            c.l1_misses += 1;
            match source {
                MissSource::RemoteL1Dirty => c.c2c_l1_dirty += 1,
                MissSource::RemoteL1Clean => c.c2c_l1_clean += 1,
                MissSource::LocalLlc => c.llc_local_hits += 1,
                MissSource::RemoteLlcDirty => c.llc_remote_dirty += 1,
                MissSource::RemoteLlcClean => c.llc_remote_clean += 1,
                MissSource::Memory => c.memory_fetches += 1,
                MissSource::Upgrade => c.upgrades += 1,
            }
        }

        // Install in the private hierarchy.
        if source != MissSource::Upgrade {
            let new_state = if write {
                LineState::Modified
            } else if outcome.exclusive {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            self.fill_l1(core, block, new_state);
        } else {
            self.l1[core].set_state(block, LineState::Modified);
            self.l0[core].set_state(block, LineState::Modified);
        }
        let _ = outcome.writeback; // memory-side only; no content effect
        StepOutcome::Miss(source)
    }

    /// Serves a miss from the LLC banks or memory, mirroring the engine's
    /// `serve_from_llc_or_memory` content effects.
    fn serve_below(&mut self, core: usize, block: BlockAddr, write: bool) -> MissSource {
        let my_bank = self.bank_of_core(core);
        let t = self.tick();
        if self.llc[my_bank].access(block, t).is_some() {
            if write {
                self.invalidate_llc_copies(block);
            }
            return MissSource::LocalLlc;
        }
        // Nearest other bank holding the block (first-minimal on ties,
        // like the engine's `min_by_key` over ascending bank ids).
        let remote = (0..self.llc.len())
            .filter(|&b| b != my_bank && self.llc[b].probe(block).is_some())
            .min_by_key(|&b| self.hops(self.bank_node(b), self.core_node(core)));
        if let Some(rb) = remote {
            let was_dirty = self.llc[rb]
                .probe(block)
                .map(LineState::is_dirty)
                .unwrap_or(false);
            if write {
                self.invalidate_llc_copies(block);
            } else {
                if was_dirty {
                    self.llc[rb].set_state(block, LineState::Shared);
                }
                self.fill_llc(my_bank, block, LineState::Shared);
            }
            return if was_dirty {
                MissSource::RemoteLlcDirty
            } else {
                MissSource::RemoteLlcClean
            };
        }
        if !write {
            self.fill_llc(my_bank, block, LineState::Shared);
        }
        MissSource::Memory
    }

    /// The engine's nearest-clean-supplier rule: among the sharers the
    /// directory knew *before* the request (excluding the requester),
    /// minimize mesh distance to the requester, first-minimal on ties.
    /// The prior sharers are the post-transition members plus any cores the
    /// transition invalidated, minus the requester.
    fn nearest_prior_sharer(&self, core: usize, block: BlockAddr, invalidated: &[usize]) -> usize {
        let mut prior: BTreeSet<usize> = self.directory.members(block).into_iter().collect();
        prior.extend(invalidated.iter().copied());
        prior.remove(&core);
        // On a write the transition removed every other sharer into
        // `invalidated`; on a read all priors remain members. Either way
        // `prior` is now exactly the engine's `prior_sharers - requester`.
        prior
            .into_iter()
            .min_by_key(|&c| self.hops(self.core_node(c), self.core_node(core)))
            .expect("clean transfer implies another sharer")
    }

    /// L1 fill with inclusive-L0 and directory bookkeeping, mirroring the
    /// engine's `fill_l1`.
    fn fill_l1(&mut self, core: usize, block: BlockAddr, state: LineState) {
        let t = self.tick();
        if let Some(victim) = self.l1[core].insert(block, state, t) {
            self.l0[core].invalidate(victim.block);
            self.directory.evict(core, victim.block);
            if victim.state.is_dirty() {
                let bank = self.bank_of_core(core);
                self.fill_llc(bank, victim.block, LineState::Modified);
            }
        }
        self.l1_fill_l0(core, block, state);
    }

    /// L0 fill: silent evictions (the engine's `fill_l0`).
    fn l1_fill_l0(&mut self, core: usize, block: BlockAddr, state: LineState) {
        let t = self.tick();
        self.l0[core].insert(block, state, t);
    }

    /// LLC fill, honoring the way quotas (static partitioning) or the
    /// current way masks (dynamic partitioning) when active; dirty victims
    /// write back to memory, which has no content representation here.
    fn fill_llc(&mut self, bank: usize, block: BlockAddr, state: LineState) {
        let t = self.tick();
        if self.mutation != Some(Mutation::IgnoreWayQuotas) {
            if let Some(masks) = &self.llc_masks {
                let mask = masks.get(block.vm().index()).copied().unwrap_or(u64::MAX);
                self.llc[bank].insert_masked(block, state, t, mask);
                return;
            }
            if let Some(quotas) = &self.llc_quotas {
                if let Some(quota) = quotas.get(block.vm().index()).copied() {
                    self.llc[bank].insert_with_quota(block, state, t, quota);
                    return;
                }
            }
        }
        self.llc[bank].insert(block, state, t);
    }

    /// LLC lines currently held per VM across every bank — the quantity
    /// the engine hands its repartitioning controller at each boundary.
    fn llc_lines_per_vm(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.counters.len()];
        for bank in &self.llc {
            for line in bank.lines() {
                let vm = line.block.vm().index();
                if vm < counts.len() {
                    counts[vm] += 1;
                }
            }
        }
        counts
    }

    /// Verifies one engine repartition decision against the model and
    /// applies it. The decision's epoch counter, old masks, occupancy, and
    /// per-VM epoch deltas are each checked against the model's own state,
    /// then the new masks are re-derived by the independent [`NaiveQos`]
    /// mirror and compared field-for-field before being adopted for
    /// subsequent fills.
    ///
    /// # Errors
    ///
    /// The `Err` string names the first mismatching quantity.
    pub fn repartition(&mut self, d: &RepartitionDecision) -> Result<(), String> {
        let n = self.counters.len();
        if self.llc_masks.is_none() || self.qos.is_none() {
            return Err("repartition decision on a non-dynamic configuration".into());
        }
        if [
            d.refs.len(),
            d.l1_misses.len(),
            d.memory_fetches.len(),
            d.occupancy_lines.len(),
            d.old_masks.len(),
            d.new_masks.len(),
        ]
        .iter()
        .any(|&len| len != n)
        {
            return Err(format!(
                "repartition epoch {}: per-VM vector length disagrees with {n} VMs",
                d.epoch
            ));
        }
        if self.mutation == Some(Mutation::IgnoreRepartition) {
            // The deliberately broken mirror never follows the controller;
            // the comparison stays, so the first decision that actually
            // moves a way surfaces as a divergence.
            let masks = self.llc_masks.as_ref().expect("checked above");
            if d.new_masks != *masks {
                return Err(format!(
                    "repartition epoch {}: engine masks {:?}, model masks {:?} \
                     (mutated: decisions ignored)",
                    d.epoch, d.new_masks, masks
                ));
            }
            return Ok(());
        }
        let masks = self.llc_masks.as_ref().expect("checked above");
        if d.old_masks != *masks {
            return Err(format!(
                "repartition epoch {}: engine old masks {:?}, model masks {:?}",
                d.epoch, d.old_masks, masks
            ));
        }
        let occ = self.llc_lines_per_vm();
        if d.occupancy_lines != occ {
            return Err(format!(
                "repartition epoch {}: engine occupancy {:?}, model {:?}",
                d.epoch, d.occupancy_lines, occ
            ));
        }
        let qos = self.qos.as_mut().expect("checked above");
        if d.epoch != qos.epochs + 1 {
            return Err(format!(
                "repartition epoch {}: model expected epoch {}",
                d.epoch,
                qos.epochs + 1
            ));
        }
        if let Some(last) = qos.last_at {
            if d.elapsed != d.at.saturating_sub(last) {
                return Err(format!(
                    "repartition epoch {}: engine elapsed {}, but boundary moved {} to {}",
                    d.epoch, d.elapsed, last, d.at
                ));
            }
        }
        qos.last_at = Some(d.at);
        // Epoch deltas from the model's own cumulative counters.
        let mut deltas = [vec![0u64; n], vec![0u64; n], vec![0u64; n]];
        for vm in 0..n {
            let cum = [
                self.counters[vm].refs,
                self.counters[vm].l1_misses,
                self.counters[vm].memory_fetches,
            ];
            for (k, name) in ["refs", "l1_misses", "memory_fetches"].iter().enumerate() {
                deltas[k][vm] = cum[k].saturating_sub(qos.prev[vm][k]);
                let engine = [&d.refs, &d.l1_misses, &d.memory_fetches][k][vm];
                if deltas[k][vm] != engine {
                    return Err(format!(
                        "repartition epoch {}: {name} delta for vm {vm}: engine {engine}, \
                         model {}",
                        d.epoch, deltas[k][vm]
                    ));
                }
            }
            qos.prev[vm] = cum;
        }
        let [refs_d, l1_d, mem_d] = deltas;
        let (classes, ewma, new_masks) = qos.decide(d.elapsed, &refs_d, &l1_d, &mem_d, &occ);
        if classes != d.classes {
            return Err(format!(
                "repartition epoch {}: engine classes {:?}, model {:?}",
                d.epoch, d.classes, classes
            ));
        }
        if ewma != d.ewma_milli {
            return Err(format!(
                "repartition epoch {}: engine ewma {:?}, model {:?}",
                d.epoch, d.ewma_milli, ewma
            ));
        }
        if new_masks != d.new_masks {
            return Err(format!(
                "repartition epoch {}: engine new masks {:?}, model {:?}",
                d.epoch, d.new_masks, new_masks
            ));
        }
        self.llc_masks = Some(new_masks);
        Ok(())
    }

    /// Verifies one engine churn boundary against the model and applies it.
    /// Everything is re-derived from the model's own state: the draws come
    /// from an independent transcription of the draw protocol, each VM's
    /// action is recomputed from the mirror's bindings and population, and
    /// scrub counts and writeback lists from the model's own private
    /// caches. Only then is the engine's record compared field-for-field —
    /// the model never adopts engine data.
    ///
    /// # Errors
    ///
    /// The `Err` string names the first mismatching quantity.
    pub fn churn(&mut self, d: &ChurnDecision) -> Result<(), String> {
        let Some(mut ch) = self.churn.take() else {
            return Err("churn decision on a churn-free configuration".into());
        };
        let result = self.churn_boundary(&mut ch, d);
        self.churn = Some(ch);
        result
    }

    fn churn_boundary(&mut self, ch: &mut NaiveChurn, d: &ChurnDecision) -> Result<(), String> {
        let n = self.counters.len();
        if d.epoch != ch.epochs + 1 {
            return Err(format!(
                "churn epoch {}: model expected epoch {}",
                d.epoch,
                ch.epochs + 1
            ));
        }
        ch.epochs += 1;
        // Independent transcription of the draw protocol: a fresh stream
        // from the root seed and the 1-based epoch ordinal, two permille
        // draws per VM in id order, unconditionally.
        let mut rng = SimRng::from_seed(ch.seed).derive_parts("churn/epoch", &[d.epoch]);
        let draws: Vec<(u32, u32)> = (0..n)
            .map(|_| (rng.below(1000) as u32, rng.below(1000) as u32))
            .collect();
        if draws != d.draws {
            return Err(format!(
                "churn epoch {}: engine draws {:?}, model draws {draws:?}",
                d.epoch, d.draws
            ));
        }
        // Decide and apply sequentially in VM id order, exactly as the
        // engine does (earlier VMs' spawns and retires change the free-core
        // set later VMs see).
        let mut actions: Vec<ChurnAction> = Vec::new();
        for (vm, &(d1, d2)) in draws.iter().enumerate() {
            let threads = ch.vm_threads[vm];
            if !ch.active[vm] {
                if d1 < ch.policy.arrival_permille[vm] {
                    let free = ch.free_cores(None);
                    if free.len() >= threads {
                        let cores = free[..threads].to_vec();
                        for &core in &cores {
                            ch.core_vm[core] = Some(vm);
                        }
                        ch.active[vm] = true;
                        actions.push(ChurnAction::Spawn { vm, cores });
                    }
                }
                continue;
            }
            if d1 < ch.policy.departure_permille[vm] && ch.active_count() > ch.policy.min_active {
                if self.mutation == Some(Mutation::IgnoreRetire) {
                    // The deliberately broken mirror never processes the
                    // death branch; the engine's Retire record then has no
                    // model counterpart and the comparison below diverges.
                    continue;
                }
                let cores = ch.cores_of(vm);
                let (invalidated_l0, invalidated_l1, writebacks) = self.scrub_private(&cores);
                for &core in &cores {
                    ch.core_vm[core] = None;
                }
                ch.active[vm] = false;
                actions.push(ChurnAction::Retire {
                    vm,
                    cores,
                    invalidated_l0,
                    invalidated_l1,
                    writebacks,
                });
                continue;
            }
            if d2 < ch.policy.migration_permille {
                let free = ch.free_cores(ch.policy.migration_targets.as_deref());
                if free.len() >= threads {
                    let to = free[..threads].to_vec();
                    let from = ch.cores_of(vm);
                    let (invalidated_l0, invalidated_l1, writebacks) =
                        if self.mutation == Some(Mutation::SkipMigrationInvalidation) {
                            // Rebind without scrubbing: stale lines and
                            // directory entries linger on the vacated cores,
                            // and the reported zero counts disagree with any
                            // engine scrub that touched a line.
                            (0, 0, Vec::new())
                        } else {
                            self.scrub_private(&from)
                        };
                    for &core in &from {
                        ch.core_vm[core] = None;
                    }
                    for &core in &to {
                        ch.core_vm[core] = Some(vm);
                    }
                    actions.push(ChurnAction::Migrate {
                        vm,
                        from,
                        to,
                        invalidated_l0,
                        invalidated_l1,
                        writebacks,
                    });
                }
            }
        }
        if actions != d.actions {
            let at = actions
                .iter()
                .zip(&d.actions)
                .position(|(model, engine)| model != engine)
                .unwrap_or(actions.len().min(d.actions.len()));
            return Err(format!(
                "churn epoch {}: action {at} disagrees: engine {:?}, model {:?}",
                d.epoch,
                d.actions.get(at),
                actions.get(at)
            ));
        }
        if ch.active != d.active_after {
            return Err(format!(
                "churn epoch {}: engine active set {:?}, model {:?}",
                d.epoch, d.active_after, ch.active
            ));
        }
        Ok(())
    }

    /// The model's transcription of the engine's churn scrub (the PR-7
    /// no-flush rule applied to private caches): per core ascending, L1
    /// lines in ascending block order — dirty lines first written back
    /// content-only into the core's local bank, every line evicted from the
    /// directory and invalidated — then L0 blocks ascending, invalidated.
    /// LLC lines are left to age out through natural replacement.
    fn scrub_private(&mut self, cores: &[usize]) -> (u64, u64, Vec<(BankId, BlockAddr)>) {
        let mut l0_count = 0u64;
        let mut l1_count = 0u64;
        let mut writebacks = Vec::new();
        for &core in cores {
            let mut l1_lines: Vec<(BlockAddr, LineState)> =
                self.l1[core].lines().map(|s| (s.block, s.state)).collect();
            l1_lines.sort_unstable_by_key(|&(block, _)| block.raw());
            let bank = self.bank_of_core(core);
            for (block, state) in l1_lines {
                if state.is_dirty() {
                    self.fill_llc(bank, block, LineState::Modified);
                    writebacks.push((BankId::new(bank), block));
                }
                self.directory.evict(core, block);
                self.l1[core].invalidate(block);
                l1_count += 1;
            }
            let mut l0_blocks: Vec<BlockAddr> = self.l0[core].lines().map(|s| s.block).collect();
            l0_blocks.sort_unstable_by_key(|block| block.raw());
            for block in l0_blocks {
                self.l0[core].invalidate(block);
                l0_count += 1;
            }
        }
        (l0_count, l1_count, writebacks)
    }

    fn invalidate_private(&mut self, core: usize, block: BlockAddr) {
        self.l1[core].invalidate(block);
        self.l0[core].invalidate(block);
    }

    fn invalidate_llc_copies(&mut self, block: BlockAddr) {
        for bank in &mut self.llc {
            bank.invalidate(block);
        }
    }

    /// Invalidations fanned out by the directory; counted against the
    /// *requesting* VM, as the engine does.
    fn invalidate_victims(
        &mut self,
        vm: usize,
        victims: &[usize],
        block: BlockAddr,
        measured: bool,
    ) {
        for &victim in victims {
            if self.mutation != Some(Mutation::SkipInvalidations) {
                self.invalidate_private(victim, block);
            }
            if measured {
                self.counters[vm].invalidations_received += 1;
            }
        }
    }

    fn bank_of_core(&self, core: usize) -> usize {
        core / self.cores_per_bank
    }

    /// Mesh node of a core (identity mapping, like the engine's layout).
    fn core_node(&self, core: usize) -> usize {
        core
    }

    /// Mesh node an LLC bank attaches to (middle of its core group).
    fn bank_node(&self, bank: usize) -> usize {
        bank * self.cores_per_bank + self.cores_per_bank / 2
    }

    /// Manhattan distance on the row-major mesh.
    fn hops(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = (a % self.mesh_width, a / self.mesh_width);
        let (bx, by) = (b % self.mesh_width, b / self.mesh_width);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::VmId;

    fn machine() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::in_vm(VmId::new(0), n)
    }

    fn read_step(core: usize, block: BlockAddr) -> AccessStep {
        AccessStep {
            core: CoreId::new(core),
            vm: VmId::new(0),
            thread: consim_types::ThreadId::new(0),
            block,
            is_write: false,
            measuring: true,
            outcome: StepOutcome::Miss(MissSource::Memory),
            dir_owner: None,
            dir_sharers: consim_coherence::CoreSet::EMPTY,
        }
    }

    #[test]
    fn cold_read_goes_to_memory() {
        let mut m = RefModel::new(&machine(), 1);
        let step = read_step(0, blk(1));
        let out = m.apply(&step);
        assert_eq!(out, StepOutcome::Miss(MissSource::Memory));
        // Second access by the same core is an L0 hit.
        let out = m.apply(&read_step(0, blk(1)));
        assert_eq!(out, StepOutcome::L0Hit);
    }

    #[test]
    fn second_reader_is_clean_c2c() {
        let mut m = RefModel::new(&machine(), 1);
        m.apply(&read_step(0, blk(1)));
        let out = m.apply(&read_step(1, blk(1)));
        assert_eq!(out, StepOutcome::Miss(MissSource::RemoteL1Clean));
    }

    #[test]
    fn write_after_remote_read_is_dirty_transfer_chain() {
        let mut m = RefModel::new(&machine(), 1);
        let mut w = read_step(0, blk(1));
        w.is_write = true;
        m.apply(&w);
        assert_eq!(m.directory.owner(blk(1)), Some(0));
        // Remote read pulls it dirty and downgrades.
        let out = m.apply(&read_step(5, blk(1)));
        assert_eq!(out, StepOutcome::Miss(MissSource::RemoteL1Dirty));
        assert_eq!(m.directory.owner(blk(1)), None);
        assert_eq!(m.directory.members(blk(1)), vec![0, 5]);
    }

    #[test]
    fn naive_lru_matches_stamp_order() {
        let mut c = NaiveCache::new(1, 2);
        c.insert(blk(1), LineState::Shared, 1);
        c.insert(blk(2), LineState::Shared, 2);
        c.access(blk(1), 3);
        let victim = c.insert(blk(3), LineState::Shared, 4).expect("eviction");
        assert_eq!(victim.block, blk(2));
        assert!(c.probe(blk(1)).is_some());
    }

    #[test]
    fn probe_does_not_touch() {
        let mut c = NaiveCache::new(1, 2);
        c.insert(blk(1), LineState::Shared, 1);
        c.insert(blk(2), LineState::Shared, 2);
        assert!(c.probe(blk(1)).is_some());
        let victim = c.insert(blk(3), LineState::Shared, 3).expect("eviction");
        assert_eq!(victim.block, blk(1), "probe must not protect the LRU line");
    }

    #[test]
    fn replication_counts_multi_bank_blocks() {
        let mut m = RefModel::new(
            &machine().with_sharing(consim_types::config::SharingDegree::Private),
            1,
        );
        m.prewarm(BankId::new(0), blk(1));
        m.prewarm(BankId::new(1), blk(1));
        m.prewarm(BankId::new(2), blk(2));
        let (total, replicated) = m.replication();
        assert_eq!(total, 3);
        assert_eq!(replicated, 2);
    }
}
