//! Automatic shrinking of failing fuzz cases.
//!
//! Given a case whose differential run fails, [`shrink`] repeatedly tries
//! an ordered list of parameter-level reductions — keep a single VM, jump
//! the core count down, cut threads, quotas, footprints, and cache sizes —
//! and accepts the *first* candidate that is strictly smaller (by
//! [`FuzzCase::size`]) and still fails, then restarts from the top of the
//! list. Restarting gives the structurally dominant reductions (VMs,
//! cores) another chance after every acceptance, which avoids the local
//! minimum where a tiny reference quota pins an otherwise shrinkable
//! machine. Strict size decrease bounds the loop.

use crate::cases::FuzzCase;
use crate::diff::run_case;
use crate::model::Mutation;
use consim_types::config::LlcPartitioning;

/// Generates shrink candidates for `case`, most aggressive first. Each is
/// canonicalized and size-checked by the caller.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Lifecycle churn goes first: a case that still fails with a static
    // population rules the whole birth–death-and-migration machinery out
    // of the repro before anything structural is touched.
    if case.churn.is_some() {
        let mut c = case.clone();
        c.churn = None;
        out.push(c);
    }
    // Keep exactly one VM (each in turn): finds the VM whose sharing
    // pattern actually triggers the failure.
    if case.vms.len() > 1 {
        for i in 0..case.vms.len() {
            let mut c = case.clone();
            c.vms = vec![case.vms[i].clone()];
            out.push(c);
        }
        let mut c = case.clone();
        c.vms.pop();
        out.push(c);
    }
    // Jump the machine straight down, smallest first.
    for target in [1usize, 2, 4, 8] {
        if target < case.num_cores {
            let mut c = case.clone();
            c.num_cores = target;
            out.push(c);
        }
    }
    // Thin threads: all the way to one, or cap at two (keeps sharing).
    if case.vms.iter().any(|v| v.threads > 1) {
        let mut c = case.clone();
        for vm in &mut c.vms {
            vm.threads = 1;
        }
        out.push(c);
    }
    if case.vms.iter().any(|v| v.threads > 2) {
        let mut c = case.clone();
        for vm in &mut c.vms {
            vm.threads = vm.threads.min(2);
        }
        out.push(c);
    }
    // Cut the reference quota, aggressively first.
    for target in [4u64, 16, 64] {
        if target < case.refs_per_vm {
            let mut c = case.clone();
            c.refs_per_vm = target;
            out.push(c);
        }
    }
    if case.refs_per_vm > 1 {
        let mut c = case.clone();
        c.refs_per_vm /= 2;
        out.push(c);
    }
    if case.warmup_refs_per_vm > 0 {
        let mut c = case.clone();
        c.warmup_refs_per_vm = 0;
        out.push(c);
    }
    if case.prewarm_llc {
        let mut c = case.clone();
        c.prewarm_llc = false;
        out.push(c);
    }
    if case.reschedule_every.is_some() {
        let mut c = case.clone();
        c.reschedule_every = None;
        out.push(c);
    }
    if case.llc_partitioning != LlcPartitioning::None {
        let mut c = case.clone();
        c.llc_partitioning = LlcPartitioning::None;
        out.push(c);
    }
    // A dynamic controller that still fails as the static equal split
    // rules the whole feedback loop out of the repro.
    if matches!(case.llc_partitioning, LlcPartitioning::Dynamic(_)) {
        let mut c = case.clone();
        c.llc_partitioning = LlcPartitioning::EqualWays;
        out.push(c);
    }
    // Halve every footprint (down to the threads+1 floor).
    {
        let mut c = case.clone();
        let mut changed = false;
        for vm in &mut c.vms {
            let floor = vm.threads as u64 + 1;
            let halved = (vm.footprint_blocks / 2).max(floor);
            if halved < vm.footprint_blocks {
                vm.footprint_blocks = halved;
                changed = true;
            }
        }
        if changed {
            out.push(c);
        }
    }
    // Halve every cache dimension toward direct-mapped single-set.
    {
        let mut c = case.clone();
        let mut changed = false;
        for field in [
            &mut c.l0_sets,
            &mut c.l0_ways,
            &mut c.l1_sets,
            &mut c.l1_ways,
            &mut c.llc_bank_sets,
            &mut c.llc_ways,
        ] {
            if *field > 1 {
                *field /= 2;
                changed = true;
            }
        }
        if changed {
            out.push(c);
        }
    }
    out
}

/// Shrinks `case` to a (locally) minimal configuration that still fails
/// under the same `mutation` setting. Returns the input unchanged when no
/// reduction reproduces the failure.
pub fn shrink(case: &FuzzCase, mutation: Option<Mutation>) -> FuzzCase {
    let mut best = case.clone();
    'outer: loop {
        for mut candidate in candidates(&best) {
            candidate.canonicalize();
            if candidate.size() >= best.size() {
                continue;
            }
            if run_case(&candidate, mutation).is_failure() {
                best = candidate;
                continue 'outer;
            }
        }
        return best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::CaseOutcome;
    use crate::model::Mutation;

    /// The mutation check from ISSUE.md: inject a coherence bug (skipped
    /// invalidations) into the model, confirm the differential harness
    /// catches it, and confirm shrinking drives the repro down to a tiny
    /// machine (≤ 4 cores, ≤ 2 VMs).
    #[test]
    fn injected_coherence_bug_is_caught_and_shrinks_small() {
        let mutation = Some(Mutation::SkipInvalidations);
        let failing = (0..60)
            .map(FuzzCase::generate)
            .find(|case| run_case(case, mutation).is_failure())
            .expect("an injected coherence bug must be caught within 60 cases");
        let small = shrink(&failing, mutation);
        assert!(run_case(&small, mutation).is_failure());
        assert!(
            small.num_cores <= 4,
            "shrunk case still has {} cores: {small:?}",
            small.num_cores
        );
        assert!(
            small.vms.len() <= 2,
            "shrunk case still has {} VMs: {small:?}",
            small.vms.len()
        );
        assert!(small.size() <= failing.size());
    }

    #[test]
    fn shrink_returns_passing_case_unchanged() {
        let case = FuzzCase::generate(3);
        assert_eq!(run_case(&case, None), run_case(&case, None));
        if let CaseOutcome::Pass { .. } = run_case(&case, None) {
            let shrunk = shrink(&case, None);
            assert_eq!(shrunk, case);
        }
    }
}
