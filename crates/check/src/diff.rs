//! Running one differential case: engine vs reference model.
//!
//! The engine drives the comparison through its [`StepObserver`] hook: the
//! observer receives every access (warmup and measurement) plus every LLC
//! prewarm insertion, replays it into the [`RefModel`], and records the
//! first disagreement. After the run, the model's accumulated per-VM
//! counters, LLC replication, and LLC occupancy are checked against the
//! engine's [`SimulationOutcome`] — exactly (both sides compute the same
//! integer counts; occupancy shares divide by the same capacities).

use crate::cases::FuzzCase;
use crate::model::{Mutation, RefModel};
use consim::engine::{Simulation, SimulationOutcome};
use consim::observe::{AccessStep, StepObserver};
use consim_types::rng::SimRng;
use consim_types::{BankId, BlockAddr};

/// The result of one differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// Engine and model agreed on every step and all final state.
    Pass {
        /// Accesses compared (warmup + measurement).
        steps: u64,
    },
    /// Engine and model disagreed; the string names the first mismatch.
    Divergence(String),
    /// The engine itself failed (config rejected, internal audit, panic
    /// guards): also a finding, but a different kind.
    EngineError(String),
}

impl CaseOutcome {
    /// True for anything other than a clean pass.
    pub fn is_failure(&self) -> bool {
        !matches!(self, CaseOutcome::Pass { .. })
    }
}

/// Step observer that mirrors every access into the reference model and
/// latches the first divergence.
struct DiffObserver {
    model: RefModel,
    steps: u64,
    failure: Option<String>,
}

impl StepObserver for DiffObserver {
    fn on_step(&mut self, step: &AccessStep) {
        if self.failure.is_some() {
            return;
        }
        self.steps += 1;
        if let Err(msg) = self.model.step(step) {
            self.failure = Some(format!("step {}: {msg}", self.steps));
        }
    }

    fn on_llc_prewarm(&mut self, bank: BankId, block: BlockAddr) {
        self.model.prewarm(bank, block);
    }

    fn on_repartition(&mut self, decision: &consim::qos::RepartitionDecision) {
        if self.failure.is_some() {
            return;
        }
        if let Err(msg) = self.model.repartition(decision) {
            self.failure = Some(format!("step {}: {msg}", self.steps));
        }
    }

    fn on_churn(&mut self, decision: &consim::churn::ChurnDecision) {
        if self.failure.is_some() {
            return;
        }
        if let Err(msg) = self.model.churn(decision) {
            self.failure = Some(format!("step {}: {msg}", self.steps));
        }
    }
}

/// Builds the reference model for a case: the lifecycle mirror is attached
/// whenever the machine carries a churn policy, and the mutation (if any)
/// installed last.
fn model_for(
    case: &FuzzCase,
    machine: &consim_types::config::MachineConfig,
    mutation: Option<Mutation>,
) -> RefModel {
    let mut model = RefModel::new(machine, case.vms.len());
    if let Some(policy) = machine.churn.clone() {
        model = model.with_churn(
            policy,
            case.sim_seed,
            case.vms.iter().map(|v| v.threads).collect(),
        );
    }
    if let Some(m) = mutation {
        model = model.with_mutation(m);
    }
    model
}

/// Runs one case differentially. `mutation`, when set, installs a
/// deliberate bug in the *model* (mutation testing — the check must fail).
pub fn run_case(case: &FuzzCase, mutation: Option<Mutation>) -> CaseOutcome {
    let config = match case.build() {
        Ok(c) => c,
        Err(e) => return CaseOutcome::EngineError(format!("config rejected: {e}")),
    };
    let sim = match Simulation::new(config) {
        Ok(s) => s,
        Err(e) => return CaseOutcome::EngineError(format!("construction failed: {e}")),
    };
    let machine = match case.machine() {
        Ok(m) => m,
        Err(e) => return CaseOutcome::EngineError(format!("machine rejected: {e}")),
    };
    let mut observer = DiffObserver {
        model: model_for(case, &machine, mutation),
        steps: 0,
        failure: None,
    };
    let outcome = match sim.run_with(Some(&mut observer)) {
        Ok(o) => o,
        Err(e) => return CaseOutcome::EngineError(format!("run failed: {e}")),
    };
    if let Some(msg) = observer.failure {
        return CaseOutcome::Divergence(msg);
    }
    match check_final_state(&observer.model, &outcome, case.vms.len()) {
        Ok(()) => CaseOutcome::Pass {
            steps: observer.steps,
        },
        Err(msg) => CaseOutcome::Divergence(msg),
    }
}

/// Runs one case *split in two*: the engine is advanced to a cut point
/// derived from the case seed, checkpointed to bytes, dropped, resumed
/// into a fresh [`Simulation`], and driven to completion — with one
/// [`RefModel`] observing the whole stream across the seam. The resumed
/// run must agree with the naive model (step-by-step and on final state)
/// *and* be bit-identical to an uninterrupted engine run of the same case.
///
/// The cut point is uniform in `[1, total accesses]`, so some cases cut
/// during warmup, some mid-measurement, and a few checkpoint an already
/// complete (but not yet finalized) run — all of which must round-trip.
pub fn run_case_resumed(case: &FuzzCase, mutation: Option<Mutation>) -> CaseOutcome {
    let config = match case.build() {
        Ok(c) => c,
        Err(e) => return CaseOutcome::EngineError(format!("config rejected: {e}")),
    };

    // Uninterrupted reference run (unobserved; the split run carries the
    // model, and both runs must land on the identical outcome anyway).
    let straight = match Simulation::new(config.clone()).and_then(Simulation::run) {
        Ok(o) => o,
        Err(e) => return CaseOutcome::EngineError(format!("straight run failed: {e}")),
    };

    let total = (case.refs_per_vm + case.warmup_refs_per_vm).max(1) * case.vms.len().max(1) as u64;
    let cut = 1 + SimRng::from_seed(case.case_seed)
        .derive("check/resume")
        .below(total);

    let machine = match case.machine() {
        Ok(m) => m,
        Err(e) => return CaseOutcome::EngineError(format!("machine rejected: {e}")),
    };
    let mut observer = DiffObserver {
        model: model_for(case, &machine, mutation),
        steps: 0,
        failure: None,
    };

    let mut sim = match Simulation::new(config) {
        Ok(s) => s,
        Err(e) => return CaseOutcome::EngineError(format!("construction failed: {e}")),
    };
    // Drive the pre-cut portion in several unequal slices rather than one
    // `advance(cut)` call: the worker pool executes jobs time-sliced, so
    // the oracle must witness that chopping a run into arbitrary slice
    // boundaries is invisible to the model and the final state alike.
    let mut slicer = SimRng::from_seed(case.case_seed).derive("check/resume-slices");
    let mut advanced = 0;
    while advanced < cut {
        let slice = (1 + slicer.below((cut - advanced).max(1))).min(cut - advanced);
        if let Err(e) = sim.advance(slice, Some(&mut observer)) {
            return CaseOutcome::EngineError(format!(
                "first half failed at access {advanced}: {e}"
            ));
        }
        advanced += slice;
    }
    let mut bytes = Vec::new();
    if let Err(e) = sim.checkpoint(&mut bytes) {
        return CaseOutcome::EngineError(format!("checkpoint at access {cut} failed: {e}"));
    }
    drop(sim);

    let mut sim = match Simulation::resume(bytes.as_slice()) {
        Ok(s) => s,
        Err(e) => return CaseOutcome::EngineError(format!("resume at access {cut} failed: {e}")),
    };
    if let Err(e) = sim.advance(u64::MAX, Some(&mut observer)) {
        return CaseOutcome::EngineError(format!("second half failed: {e}"));
    }
    let outcome = match sim.finish() {
        Ok(o) => o,
        Err(e) => return CaseOutcome::EngineError(format!("finish failed: {e}")),
    };

    if let Some(msg) = observer.failure {
        return CaseOutcome::Divergence(format!("resumed at access {cut}: {msg}"));
    }
    if let Err(msg) = check_final_state(&observer.model, &outcome, case.vms.len()) {
        return CaseOutcome::Divergence(format!("resumed at access {cut}: {msg}"));
    }
    // Exact agreement with the uninterrupted engine run. Debug formatting
    // round-trips every integer and float, so string equality here is
    // bit-for-bit equality of the outcomes.
    let want = format!("{straight:?}");
    let got = format!("{outcome:?}");
    if want != got {
        return CaseOutcome::Divergence(format!(
            "resumed at access {cut}: outcome differs from uninterrupted run: {}",
            first_difference(&want, &got)
        ));
    }
    CaseOutcome::Pass {
        steps: observer.steps,
    }
}

/// Points at the first byte where two renderings diverge, with context.
fn first_difference(want: &str, got: &str) -> String {
    let at = want
        .bytes()
        .zip(got.bytes())
        .position(|(w, g)| w != g)
        .unwrap_or_else(|| want.len().min(got.len()));
    let lo = at.saturating_sub(40);
    let snip = |s: &str| {
        let hi = (at + 40).min(s.len());
        String::from_utf8_lossy(&s.as_bytes()[lo..hi]).into_owned()
    };
    format!(
        "first difference at byte {at}: straight `..{}..` vs resumed `..{}..`",
        snip(want),
        snip(got)
    )
}

/// Compares the model's end-of-run aggregates with the engine's.
fn check_final_state(
    model: &RefModel,
    outcome: &SimulationOutcome,
    num_vms: usize,
) -> Result<(), String> {
    if outcome.vm_metrics.len() != num_vms {
        return Err(format!(
            "vm count mismatch: engine {}, model {num_vms}",
            outcome.vm_metrics.len()
        ));
    }
    for (vm, (engine, model)) in outcome
        .vm_metrics
        .iter()
        .zip(model.counters().iter())
        .enumerate()
    {
        let pairs: &[(&str, u64, u64)] = &[
            ("refs", engine.refs, model.refs),
            ("writes", engine.writes, model.writes),
            ("l0_hits", engine.l0_hits, model.l0_hits),
            ("l1_hits", engine.l1_hits, model.l1_hits),
            ("l1_misses", engine.l1_misses, model.l1_misses),
            ("c2c_l1_clean", engine.c2c_l1_clean, model.c2c_l1_clean),
            ("c2c_l1_dirty", engine.c2c_l1_dirty, model.c2c_l1_dirty),
            (
                "llc_local_hits",
                engine.llc_local_hits,
                model.llc_local_hits,
            ),
            (
                "llc_remote_clean",
                engine.llc_remote_clean,
                model.llc_remote_clean,
            ),
            (
                "llc_remote_dirty",
                engine.llc_remote_dirty,
                model.llc_remote_dirty,
            ),
            (
                "memory_fetches",
                engine.memory_fetches,
                model.memory_fetches,
            ),
            ("upgrades", engine.upgrades, model.upgrades),
            (
                "invalidations_received",
                engine.invalidations_received,
                model.invalidations_received,
            ),
        ];
        for &(name, e, m) in pairs {
            if e != m {
                return Err(format!(
                    "final counter mismatch for vm {vm}: {name} engine {e}, model {m}"
                ));
            }
        }
    }
    let (total, replicated) = model.replication();
    if outcome.replication.total_lines != total {
        return Err(format!(
            "replication total_lines mismatch: engine {}, model {total}",
            outcome.replication.total_lines
        ));
    }
    if outcome.replication.replicated_lines != replicated {
        return Err(format!(
            "replication replicated_lines mismatch: engine {}, model {replicated}",
            outcome.replication.replicated_lines
        ));
    }
    let model_share = model.occupancy(num_vms);
    if outcome.occupancy.share != model_share {
        return Err(format!(
            "occupancy mismatch: engine {:?}, model {model_share:?}",
            outcome.occupancy.share
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_sched::SchedulingPolicy;

    #[test]
    fn smoke_cases_pass() {
        for seed in 0..25 {
            let case = FuzzCase::generate(seed);
            let outcome = run_case(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "seed {seed}: {outcome:?}\ncase: {case:?}"
            );
        }
    }

    #[test]
    fn paper_shaped_case_passes() {
        // A 16-core case with multiple VMs, closer to the paper's machine.
        let mut case = FuzzCase::generate(1);
        case.num_cores = 16;
        case.mesh_width = 4;
        case.cores_per_bank = 4;
        case.l1_sets = 8;
        case.l1_ways = 4;
        case.llc_bank_sets = 8;
        case.llc_ways = 4;
        case.refs_per_vm = 400;
        case.warmup_refs_per_vm = 100;
        case.canonicalize();
        let outcome = run_case(&case, None);
        assert!(
            matches!(outcome, CaseOutcome::Pass { .. }),
            "{outcome:?}\ncase: {case:?}"
        );
    }

    /// Degenerate shapes pinned from fuzzing sessions: each of these hit a
    /// real bug (or guards a boundary close to one) and must stay green.
    #[test]
    fn pinned_degenerate_cases_pass() {
        // One core, one VM, direct-mapped single-set caches everywhere,
        // zero warmup, prewarm into a tiny LLC.
        let mut tiny = FuzzCase::generate(0);
        tiny.num_cores = 1;
        tiny.vms.truncate(1);
        tiny.vms[0].threads = 1;
        tiny.l0_sets = 1;
        tiny.l0_ways = 1;
        tiny.l1_sets = 1;
        tiny.l1_ways = 1;
        tiny.llc_bank_sets = 1;
        tiny.llc_ways = 1;
        tiny.warmup_refs_per_vm = 0;
        tiny.prewarm_llc = true;
        tiny.canonicalize();

        // Random placement with fewer threads than cores plus frequent
        // rescheduling: the engine used to panic popping a vacated core's
        // issue event ("scheduled cores have threads").
        let mut churn = FuzzCase::generate(1);
        churn.num_cores = 16;
        churn.policy = SchedulingPolicy::Random;
        churn.reschedule_every = Some(200);
        churn.refs_per_vm = 500;
        churn.canonicalize();
        assert!(
            churn.vms.iter().map(|v| v.threads).sum::<usize>() < churn.num_cores,
            "repro needs idle cores for the occupied set to change"
        );

        // Single-set LLC shared by every core: maximum bank contention on
        // one replacement list.
        let mut oneset = FuzzCase::generate(2);
        oneset.num_cores = 4;
        oneset.cores_per_bank = 4;
        oneset.llc_bank_sets = 1;
        oneset.llc_ways = 2;
        oneset.canonicalize();

        for (name, case) in [("tiny", tiny), ("churn", churn), ("oneset", oneset)] {
            let outcome = run_case(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "{name}: {outcome:?}\ncase: {case:?}"
            );
        }
    }

    #[test]
    fn partitioned_cases_pass() {
        use consim_types::config::LlcPartitioning;

        // A paper-shaped machine with an uneven explicit split under bank
        // contention, prewarmed so the masked prewarm path is covered too.
        let mut split = FuzzCase::generate(5);
        split.num_cores = 8;
        split.cores_per_bank = 4;
        split.llc_bank_sets = 2;
        split.llc_ways = 4;
        split.vms.truncate(2);
        while split.vms.len() < 2 {
            split.vms.push(split.vms[0].clone());
        }
        split.llc_partitioning = LlcPartitioning::ExplicitWays(vec![3, 1]);
        split.prewarm_llc = true;
        split.refs_per_vm = 400;
        split.canonicalize();
        assert!(
            matches!(split.llc_partitioning, LlcPartitioning::ExplicitWays(_)),
            "canonicalize must keep a valid split: {split:?}"
        );

        // Equal-ways across every generated partitionable shape.
        let mut equal = FuzzCase::generate(6);
        equal.llc_ways = 4;
        equal.llc_partitioning = LlcPartitioning::EqualWays;
        equal.canonicalize();

        for (name, case) in [("split", split), ("equal", equal)] {
            let outcome = run_case(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "{name}: {outcome:?}\ncase: {case:?}"
            );
        }

        // And the generator's own partitioned cases agree end-to-end.
        let partitioned: Vec<FuzzCase> = (0..200)
            .map(FuzzCase::generate)
            .filter(|c| c.llc_partitioning != LlcPartitioning::None)
            .take(10)
            .collect();
        assert!(
            !partitioned.is_empty(),
            "generator produced no partitioned cases"
        );
        for case in partitioned {
            let outcome = run_case(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "seed {}: {outcome:?}\ncase: {case:?}",
                case.case_seed
            );
        }
    }

    #[test]
    fn dynamic_cases_pass() {
        use consim_types::config::{DynamicPolicy, LlcPartitioning};

        // A pinned dynamic case tuned so decisions fire and ways move: a
        // short epoch, no dead-band, two VMs with very different appetites
        // on a small LLC.
        let mut pinned = FuzzCase::generate(5);
        pinned.num_cores = 8;
        pinned.cores_per_bank = 4;
        pinned.llc_bank_sets = 2;
        pinned.llc_ways = 4;
        pinned.vms.truncate(2);
        while pinned.vms.len() < 2 {
            pinned.vms.push(pinned.vms[0].clone());
        }
        pinned.vms[0].footprint_blocks = 8;
        pinned.vms[1].footprint_blocks = 96;
        pinned.llc_partitioning = LlcPartitioning::Dynamic(DynamicPolicy {
            epoch_interval: 500,
            deadband_milli: 0,
            ..Default::default()
        });
        pinned.refs_per_vm = 600;
        pinned.warmup_refs_per_vm = 100;
        pinned.canonicalize();
        assert!(
            matches!(pinned.llc_partitioning, LlcPartitioning::Dynamic(_)),
            "canonicalize must keep a feasible dynamic policy: {pinned:?}"
        );
        let outcome = run_case(&pinned, None);
        assert!(
            matches!(outcome, CaseOutcome::Pass { .. }),
            "pinned: {outcome:?}\ncase: {pinned:?}"
        );

        // And the generator's own dynamic cases agree end-to-end.
        let dynamic: Vec<FuzzCase> = (0..200)
            .map(FuzzCase::generate)
            .filter(|c| matches!(c.llc_partitioning, LlcPartitioning::Dynamic(_)))
            .take(10)
            .collect();
        assert!(!dynamic.is_empty(), "generator produced no dynamic cases");
        for case in dynamic {
            let outcome = run_case(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "seed {}: {outcome:?}\ncase: {case:?}",
                case.case_seed
            );
        }
    }

    #[test]
    fn resumed_dynamic_cases_pass() {
        // The seam must round-trip the controller mirror too: checkpoint a
        // dynamic case mid-run (sometimes mid-epoch, sometimes right on a
        // boundary, wherever the seeded cut lands) and keep agreeing.
        use consim_types::config::LlcPartitioning;
        let dynamic: Vec<FuzzCase> = (0..200)
            .map(FuzzCase::generate)
            .filter(|c| matches!(c.llc_partitioning, LlcPartitioning::Dynamic(_)))
            .take(8)
            .collect();
        assert!(!dynamic.is_empty(), "generator produced no dynamic cases");
        for case in dynamic {
            let outcome = run_case_resumed(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "seed {}: {outcome:?}\ncase: {case:?}",
                case.case_seed
            );
        }
    }

    /// A pinned case where all three lifecycle action kinds fire within the
    /// run: a 16-core machine, three 2-thread VMs of which two start, short
    /// boundaries, and aggressive rates.
    fn churny() -> FuzzCase {
        use consim_types::config::ChurnPolicy;
        let mut case = FuzzCase::generate(7);
        case.num_cores = 16;
        case.mesh_width = 4;
        case.cores_per_bank = 4;
        case.l1_sets = 8;
        case.l1_ways = 4;
        case.llc_bank_sets = 8;
        case.llc_ways = 4;
        while case.vms.len() < 3 {
            case.vms.push(case.vms[0].clone());
        }
        case.vms.truncate(3);
        for vm in &mut case.vms {
            vm.threads = 2;
            vm.footprint_blocks = vm.footprint_blocks.max(48);
        }
        case.refs_per_vm = 600;
        case.warmup_refs_per_vm = 150;
        case.reschedule_every = None;
        case.llc_partitioning = consim_types::config::LlcPartitioning::None;
        case.churn = Some(ChurnPolicy {
            interval: 300,
            arrival_permille: vec![850; 3],
            departure_permille: vec![350; 3],
            migration_permille: 500,
            initial_active: 2,
            min_active: 1,
            migration_targets: None,
        });
        case.canonicalize();
        assert!(case.churn.is_some(), "canonicalize must keep the policy");
        case
    }

    #[test]
    fn churned_cases_pass() {
        // The pinned all-action-kinds case, then the generator's own
        // churned stream, all end-to-end against the lifecycle mirror.
        let pinned = churny();
        let outcome = run_case(&pinned, None);
        assert!(
            matches!(outcome, CaseOutcome::Pass { .. }),
            "pinned: {outcome:?}\ncase: {pinned:?}"
        );
        let churned: Vec<FuzzCase> = (0..200)
            .map(FuzzCase::generate)
            .filter(|c| c.churn.is_some())
            .take(10)
            .collect();
        assert!(!churned.is_empty(), "generator produced no churned cases");
        for case in churned {
            let outcome = run_case(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "seed {}: {outcome:?}\ncase: {case:?}",
                case.case_seed
            );
        }
    }

    #[test]
    fn resumed_churned_cases_pass() {
        // The seam must round-trip the lifecycle state too: checkpoint a
        // churned case wherever the seeded cut lands (sometimes right on a
        // boundary, sometimes mid-interval) and keep agreeing with both the
        // mirror and the uninterrupted run.
        let pinned = churny();
        let outcome = run_case_resumed(&pinned, None);
        assert!(
            matches!(outcome, CaseOutcome::Pass { .. }),
            "pinned: {outcome:?}\ncase: {pinned:?}"
        );
        let churned: Vec<FuzzCase> = (0..200)
            .map(FuzzCase::generate)
            .filter(|c| c.churn.is_some())
            .take(6)
            .collect();
        assert!(!churned.is_empty(), "generator produced no churned cases");
        for case in churned {
            let outcome = run_case_resumed(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "seed {}: {outcome:?}\ncase: {case:?}",
                case.case_seed
            );
        }
    }

    #[test]
    fn ignore_retire_mutation_is_detected() {
        // A model whose mirror never processes departures must diverge the
        // moment the engine retires a VM — symmetrically, an engine that
        // silently dropped retirements would be caught the same way.
        let caught = std::iter::once(churny())
            .chain(
                (0..400)
                    .map(FuzzCase::generate)
                    .filter(|c| {
                        c.churn.as_ref().is_some_and(|ch| {
                            c.vms.len() >= 2 && ch.departure_permille.iter().any(|&r| r >= 200)
                        })
                    })
                    .take(20),
            )
            .any(|case| run_case(&case, Some(Mutation::IgnoreRetire)).is_failure());
        assert!(caught, "IgnoreRetire was never detected");
    }

    #[test]
    fn skip_migration_invalidation_mutation_is_detected() {
        // A model that rebinds a migrating VM without scrubbing must
        // diverge on the boundary's invalidation counts (or the stale
        // directory entries its skipped evictions leave behind).
        let caught = std::iter::once(churny())
            .chain(
                (0..400)
                    .map(FuzzCase::generate)
                    .filter(|c| {
                        c.churn
                            .as_ref()
                            .is_some_and(|ch| ch.migration_permille >= 200)
                    })
                    .take(20),
            )
            .any(|case| run_case(&case, Some(Mutation::SkipMigrationInvalidation)).is_failure());
        assert!(caught, "SkipMigrationInvalidation was never detected");
    }

    #[test]
    fn ignore_repartition_mutation_is_detected() {
        // A model that freezes the initial split while the engine's
        // controller moves ways must diverge — symmetrically, an engine
        // that silently dropped the QoS feedback loop would be caught the
        // same way. Only dynamic multi-VM cases can move ways at all.
        use consim_types::config::LlcPartitioning;
        let caught = (0..400)
            .map(FuzzCase::generate)
            .filter(|c| {
                matches!(c.llc_partitioning, LlcPartitioning::Dynamic(_)) && c.vms.len() >= 2
            })
            .take(20)
            .any(|case| run_case(&case, Some(Mutation::IgnoreRepartition)).is_failure());
        assert!(caught, "IgnoreRepartition was never detected");
    }

    #[test]
    fn resumed_smoke_cases_pass() {
        for seed in 0..25 {
            let case = FuzzCase::generate(seed);
            let outcome = run_case_resumed(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "seed {seed}: {outcome:?}\ncase: {case:?}"
            );
        }
    }

    #[test]
    fn resumed_run_observes_the_same_stream_as_a_straight_run() {
        // The resumed harness compares final outcomes bit-for-bit itself;
        // here we also pin that the *observer* saw exactly as many steps as
        // a straight observed run — the seam neither drops nor replays
        // accesses.
        for seed in [3, 11, 19] {
            let case = FuzzCase::generate(seed);
            let straight = run_case(&case, None);
            let resumed = run_case_resumed(&case, None);
            match (&straight, &resumed) {
                (CaseOutcome::Pass { steps: a }, CaseOutcome::Pass { steps: b }) => {
                    assert_eq!(a, b, "seed {seed}: step counts differ across the seam");
                }
                _ => panic!("seed {seed}: straight {straight:?}, resumed {resumed:?}"),
            }
        }
    }

    #[test]
    fn resumed_cases_cover_rescheduling_and_prewarm() {
        // The two stateful edges a checkpoint is most likely to lose:
        // dynamic rescheduling epochs and a prewarmed LLC.
        let mut churn = FuzzCase::generate(1);
        churn.num_cores = 16;
        churn.policy = SchedulingPolicy::Random;
        churn.reschedule_every = Some(200);
        churn.refs_per_vm = 500;
        churn.canonicalize();

        let mut warm = FuzzCase::generate(4);
        warm.prewarm_llc = true;
        warm.warmup_refs_per_vm = 0;
        warm.canonicalize();

        for (name, case) in [("churn", churn), ("warm", warm)] {
            let outcome = run_case_resumed(&case, None);
            assert!(
                matches!(outcome, CaseOutcome::Pass { .. }),
                "{name}: {outcome:?}\ncase: {case:?}"
            );
        }
    }

    #[test]
    fn resumed_mode_still_detects_mutations() {
        // The seam must not blind the oracle: a deliberately broken model
        // diverges under the resumed harness too.
        let caught = (0..40).any(|seed| {
            run_case_resumed(&FuzzCase::generate(seed), Some(Mutation::SkipInvalidations))
                .is_failure()
        });
        assert!(caught, "SkipInvalidations was never detected across a seam");
    }

    #[test]
    fn mutations_are_detected() {
        // Each deliberate model bug must surface as a divergence on at
        // least one of a handful of cases (the differential check is
        // symmetric: if a broken model passes, a broken engine would too).
        for mutation in [
            Mutation::SkipInvalidations,
            Mutation::IgnoreOwners,
            Mutation::SkipOwnerDowngrade,
        ] {
            let caught = (0..40)
                .any(|seed| run_case(&FuzzCase::generate(seed), Some(mutation)).is_failure());
            assert!(caught, "{mutation:?} was never detected");
        }
        // The quota mutation only diverges on partitioned cases, so give
        // it the generator's partitioned stream.
        let caught = (0..200)
            .map(FuzzCase::generate)
            .filter(|c| c.llc_partitioning != consim_types::config::LlcPartitioning::None)
            .take(20)
            .any(|case| run_case(&case, Some(Mutation::IgnoreWayQuotas)).is_failure());
        assert!(caught, "IgnoreWayQuotas was never detected");
    }

    #[test]
    fn fast_path_demotion_mutation_is_detected_on_hit_heavy_streams() {
        // The engine's private-hit fast path must bail out to the upgrade
        // transaction on every write that hits a Shared line; the mutation
        // plants the exact opposite bug in the model. It must surface on
        // the high-locality biased stream — the nearly-all-hits regime
        // where a fast-path misclassification would otherwise hide.
        let caught = (0..40).any(|seed| {
            let mut case = FuzzCase::generate(seed);
            case.bias_high_locality();
            run_case(&case, Some(Mutation::SkipFastPathDemotion)).is_failure()
        });
        assert!(caught, "SkipFastPathDemotion was never detected");
    }
}
