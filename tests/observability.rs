//! End-to-end observability: the JSONL trace a runner emits is parseable,
//! the manifest round-trips, the counter audit passes on real runs, and
//! the ratio helpers stay NaN-free through the report display paths even
//! on degenerate inputs.

use server_consolidation_sim::engine::TraceConfig;
use server_consolidation_sim::prelude::*;
use server_consolidation_sim::trace::{
    digest_of, ClassMask, JsonlSink, Manifest, RingBufferSink, TraceEvent, TraceSink,
};
use std::sync::Arc;

fn tiny_options() -> RunOptions {
    RunOptions {
        refs_per_vm: 2_000,
        warmup_refs_per_vm: 500,
        seeds: vec![1, 2],
        track_footprint: false,
        prewarm_llc: false,
    }
}

/// Minimal structural JSON check (the workspace is dependency-free, so no
/// serde): braces and brackets balance outside strings, strings terminate,
/// and the nesting depth never goes negative.
fn assert_parseable_json(line: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in line.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced nesting in {line:?}");
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string in {line:?}");
    assert_eq!(depth, 0, "unbalanced braces in {line:?}");
}

#[test]
fn traced_batch_emits_parseable_jsonl_and_manifest() {
    let dir = std::env::temp_dir().join("consim-observability-jsonl");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let sink = Arc::new(JsonlSink::with_mask(&dir.join("events.jsonl"), ClassMask::ALL).unwrap());
    let options = tiny_options();
    let runner = ExperimentRunner::new(options.clone())
        .with_audit(true)
        .with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    runner
        .run(
            &[WorkloadKind::SpecJbb, WorkloadKind::TpcH],
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    sink.flush().unwrap();
    assert_eq!(sink.errors(), 0);

    let text = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        assert!(line.starts_with("{\"event\":\""), "bad line {line:?}");
        assert_parseable_json(line);
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line:?}");
    }
    // One run per seed, each audited (audit explicitly on), plus runner
    // timing events for the cell and the batch.
    for (tag, expected) in [
        ("run_started", 2),
        ("run_completed", 2),
        ("audit_passed", 2),
        ("cell_completed", 2),
        ("batch_completed", 1),
    ] {
        let needle = format!("{{\"event\":\"{tag}\"");
        let n = lines.iter().filter(|l| l.starts_with(&needle)).count();
        assert_eq!(n, expected, "{tag}: {n} lines");
    }

    let manifest = Manifest {
        bin: "run_all",
        crate_version: env!("CARGO_PKG_VERSION"),
        config_digest: digest_of(&options),
        seeds: options.seeds.clone(),
        llc_partitioning: "none".to_string(),
        threads: 1,
        audit: true,
        wall_seconds: 0.5,
        trace_lines: sink.lines(),
        trace_errors: sink.errors(),
        resumed_from: None,
        jobs: Vec::new(),
        checkpoints: Vec::new(),
    };
    let path = manifest.write_to(&dir).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    assert_parseable_json(&json.replace('\n', " "));
    assert!(json.contains(&format!("\"config_digest\": \"{}\"", digest_of(&options))));
    assert!(json.contains("\"seeds\": [1, 2]"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn epoch_snapshots_form_a_sane_time_series() {
    let sink = Arc::new(RingBufferSink::new(4_096));
    let mut b = SimulationConfig::builder();
    b.workload(WorkloadKind::TpcW.profile())
        .workload(WorkloadKind::SpecWeb.profile())
        .refs_per_vm(4_000)
        .warmup_refs_per_vm(500)
        .seed(3)
        .trace(TraceConfig {
            sink: Arc::clone(&sink) as Arc<dyn TraceSink>,
            epoch_cycles: 5_000,
            coherence_sample: 16,
        });
    Simulation::new(b.build().unwrap()).unwrap().run().unwrap();

    let events = sink.snapshot();
    let mut last_cycle = 0;
    let mut epochs = 0;
    for event in &events {
        if let TraceEvent::Epoch {
            cycle,
            vm,
            refs,
            l1_misses,
            llc_miss_rate,
            ..
        } = event
        {
            epochs += 1;
            assert!(*cycle >= last_cycle, "epochs must be time-ordered");
            last_cycle = *cycle;
            assert!(*vm < 2);
            assert!(*l1_misses <= *refs);
            assert!((0.0..=1.0).contains(llc_miss_rate));
        }
    }
    assert!(epochs >= 2, "only {epochs} epoch snapshots recorded");
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::EpochMachine { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Coherence { .. })));
}

#[test]
fn zero_refs_is_a_config_error_not_a_nan_factory() {
    let mut b = SimulationConfig::builder();
    b.workload(WorkloadKind::TpcH.profile()).refs_per_vm(0);
    let err = b.build().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
}

#[test]
fn single_vm_run_is_nan_free_through_report_display() {
    let runner = ExperimentRunner::new(RunOptions {
        refs_per_vm: 1_000,
        warmup_refs_per_vm: 0,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    });
    let run = runner
        .isolated(
            WorkloadKind::SpecWeb,
            SchedulingPolicy::Affinity,
            SharingDegree::FullyShared,
        )
        .unwrap();
    let vm = &run.vms[0];
    let mut table = TextTable::new("single-VM edge case", &["value"]);
    for (label, summary) in [
        ("runtime", &vm.runtime_cycles),
        ("miss rate", &vm.llc_miss_rate),
        ("miss latency", &vm.miss_latency),
        ("c2c", &vm.c2c_fraction),
        ("c2c of misses", &vm.c2c_of_hierarchy_misses),
        ("c2c dirty", &vm.c2c_dirty_fraction),
        ("mpkr", &vm.mpkr),
        ("replication", &run.replication),
        ("noc latency", &run.noc_latency),
    ] {
        assert!(summary.mean.is_finite(), "{label} mean is not finite");
        table.row(label, &[summary.mean]);
    }
    let rendered = table.to_string();
    assert!(!rendered.contains("NaN"), "report shows NaN:\n{rendered}");

    // A lone VM still sees c2c transfers between its own threads' L1s,
    // but the fraction must be a proper ratio, never 0/0.
    assert!((0.0..=1.0).contains(&vm.c2c_fraction.mean));
}

#[test]
fn empty_stats_ratio_helpers_are_zero_not_nan() {
    let noc = server_consolidation_sim::noc::NocStats::default();
    assert_eq!(noc.mean_hops(), 0.0);
    let protocol = server_consolidation_sim::coherence::ProtocolStats::default();
    assert_eq!(protocol.cache_to_cache_fraction(), 0.0);
}
