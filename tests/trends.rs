//! Trend assertions mirroring the paper's headline claims.
//!
//! These are *shape* checks, not absolute-number checks: who wins, what
//! direction a knob pushes, which workload is most/least sensitive.

use server_consolidation_sim::prelude::*;

fn runner() -> ExperimentRunner {
    ExperimentRunner::new(RunOptions {
        refs_per_vm: 40_000,
        warmup_refs_per_vm: 120_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    })
}

fn mean_runtime(run: &MixRun, kind: WorkloadKind) -> f64 {
    run.mean_over_kind(kind, |v| v.runtime_cycles.mean)
}

/// Paper Fig. 2/3: partitioning the LLC down to private slices raises the
/// miss rate and hurts isolated performance (affinity keeps capacity
/// constant per arrangement, so it shows the capacity effect cleanly).
/// TPC-W, with the largest footprint, shows the effect at test scale;
/// the smaller workloads need figure-scale warmup (see EXPERIMENTS.md).
#[test]
fn isolated_private_caches_miss_more_than_fully_shared() {
    let r = runner();
    {
        let kind = WorkloadKind::TpcW;
        let shared = r
            .isolated(kind, SchedulingPolicy::Affinity, SharingDegree::FullyShared)
            .unwrap();
        let private = r
            .isolated(kind, SchedulingPolicy::Affinity, SharingDegree::Private)
            .unwrap();
        assert!(
            private.vms[0].llc_miss_rate.mean > shared.vms[0].llc_miss_rate.mean,
            "{kind}: private miss rate must exceed fully shared"
        );
        assert!(
            private.vms[0].runtime_cycles.mean > shared.vms[0].runtime_cycles.mean,
            "{kind}: private runtime must exceed fully shared"
        );
    }
}

/// Paper §V-A: in isolation, round robin's access to the whole chip's cache
/// gives it a lower miss rate than affinity confined to one shared-4 bank.
#[test]
fn isolated_shared4_affinity_is_capacity_constrained() {
    let r = runner();
    let kind = WorkloadKind::TpcW; // largest footprint, clearest effect
    let rr = r
        .isolated(
            kind,
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    let aff = r
        .isolated(kind, SchedulingPolicy::Affinity, SharingDegree::SharedBy(4))
        .unwrap();
    assert!(
        aff.vms[0].llc_miss_rate.mean > rr.vms[0].llc_miss_rate.mean,
        "affinity in one 4MB bank must miss more than rr across 16MB"
    );
}

/// Paper §V-C headline: TPC-H is largely unaffected by co-runners, while
/// other workloads suffer, because its small, transfer-friendly working set
/// isolates it.
#[test]
fn tpc_h_is_least_affected_by_consolidation() {
    // Cache-capacity interference only shows once the LLC is warm, so this
    // test runs with a longer warmup than the others.
    let r = ExperimentRunner::new(RunOptions {
        refs_per_vm: 40_000,
        warmup_refs_per_vm: 300_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    });
    let mix1 = [
        WorkloadKind::TpcW,
        WorkloadKind::TpcW,
        WorkloadKind::TpcW,
        WorkloadKind::TpcH,
    ];
    let run = r
        .run(
            &mix1,
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    // Paper Fig. 8 normalizes to the fully-shared isolation baseline.
    let h_base = r.isolation_baseline(WorkloadKind::TpcH).unwrap().vms[0]
        .runtime_cycles
        .mean;
    let w_base = r.isolation_baseline(WorkloadKind::TpcW).unwrap().vms[0]
        .runtime_cycles
        .mean;
    let h_slow = mean_runtime(&run, WorkloadKind::TpcH) / h_base;
    let w_slow = mean_runtime(&run, WorkloadKind::TpcW) / w_base;
    assert!(
        h_slow < w_slow,
        "TPC-H slowdown ({h_slow:.2}x) must stay below TPC-W's ({w_slow:.2}x)"
    );
    assert!(
        h_slow < 2.0,
        "TPC-H must be largely isolated from co-runners, got {h_slow:.2}x"
    );
}

/// Paper §V-B: affinity is the best policy for homogeneous mixes (it
/// shares data in one LLC and avoids long-latency misses).
#[test]
fn affinity_beats_round_robin_for_homogeneous_specjbb() {
    let r = runner();
    let instances = [WorkloadKind::SpecJbb; 4];
    let aff = r
        .run(
            &instances,
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    let rr = r
        .run(
            &instances,
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    assert!(
        mean_runtime(&aff, WorkloadKind::SpecJbb) < mean_runtime(&rr, WorkloadKind::SpecJbb),
        "affinity must beat round robin for SPECjbb x4"
    );
}

/// Paper Fig. 12: round robin replicates the most lines; affinity
/// replicates none (each workload owns one bank); private caches replicate
/// the most of all.
#[test]
fn replication_ordering_matches_fig12() {
    let r = runner();
    let instances = [WorkloadKind::SpecJbb; 4];
    let aff = r
        .run(
            &instances,
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    let rr = r
        .run(
            &instances,
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    let private = r
        .run(
            &instances,
            SchedulingPolicy::RoundRobin,
            SharingDegree::Private,
        )
        .unwrap();
    assert!(aff.replication.mean < 0.01, "affinity must not replicate");
    assert!(
        rr.replication.mean > aff.replication.mean,
        "rr must replicate more than affinity"
    );
    assert!(
        private.replication.mean > aff.replication.mean,
        "private caches must replicate (each thread has its own bank)"
    );
}

/// Paper Fig. 13: in Mix 1 (3x TPC-W + TPC-H, round robin), TPC-H occupies
/// less than its fair share of LLC capacity.
#[test]
fn tpc_h_underoccupies_its_fair_share() {
    let r = runner();
    let mix1 = [
        WorkloadKind::TpcW,
        WorkloadKind::TpcW,
        WorkloadKind::TpcW,
        WorkloadKind::TpcH,
    ];
    let run = r
        .run(
            &mix1,
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    // VM 3 is the TPC-H instance; fair share is 25% of each bank.
    let tpch_share: f64 =
        run.occupancy.iter().map(|bank| bank[3]).sum::<f64>() / run.occupancy.len() as f64;
    assert!(
        tpch_share < 0.25,
        "TPC-H must under-occupy its fair share, got {tpch_share:.3}"
    );
}

/// Consolidation must never corrupt functional isolation: every metric
/// remains per-VM sane, and occupancies attribute lines only to real VMs.
#[test]
fn consolidated_metrics_are_sane() {
    let r = runner();
    let mix5 = [
        WorkloadKind::SpecJbb,
        WorkloadKind::SpecJbb,
        WorkloadKind::TpcH,
        WorkloadKind::TpcH,
    ];
    for policy in [
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::Affinity,
        SchedulingPolicy::RrAffinity,
        SchedulingPolicy::Random,
    ] {
        let run = r.run(&mix5, policy, SharingDegree::SharedBy(4)).unwrap();
        for v in &run.vms {
            assert!(v.llc_miss_rate.mean >= 0.0 && v.llc_miss_rate.mean <= 1.0);
            assert!(
                v.miss_latency.mean > 6.0,
                "{policy}: latency below LLC access"
            );
            assert!(v.runtime_cycles.mean > 0.0);
            assert!(v.c2c_fraction.mean >= 0.0 && v.c2c_fraction.mean <= 1.0);
        }
        for bank in &run.occupancy {
            assert!(bank.iter().sum::<f64>() <= 1.0 + 1e-9);
        }
    }
}

/// The sharing-degree sweep is monotone for capacity-bound workloads: more
/// partitioning cannot *reduce* the isolated miss rate under affinity.
#[test]
fn miss_rate_monotone_across_sharing_sweep() {
    let r = runner();
    let mut last = -1.0;
    for sharing in [
        SharingDegree::FullyShared,
        SharingDegree::SharedBy(8),
        SharingDegree::SharedBy(4),
    ] {
        let run = r
            .isolated(WorkloadKind::TpcW, SchedulingPolicy::Affinity, sharing)
            .unwrap();
        let rate = run.vms[0].llc_miss_rate.mean;
        assert!(
            rate >= last - 0.02,
            "miss rate must not improve as capacity shrinks: {rate:.3} after {last:.3} ({sharing})"
        );
        last = rate;
    }
}
