//! Calibration against the paper's Table II.
//!
//! Each built-in workload, simulated in the paper's private-cache
//! configuration, must land near its published statistics: the fraction of
//! private-hierarchy misses served by cache-to-cache transfers and the
//! dirty share of those transfers. Tolerances are generous (test-scale runs
//! are shorter than the figure-scale ones recorded in EXPERIMENTS.md) but
//! tight enough that the workloads cannot trade places.

use server_consolidation_sim::prelude::*;

fn runner() -> ExperimentRunner {
    ExperimentRunner::new(RunOptions {
        refs_per_vm: 60_000,
        warmup_refs_per_vm: 150_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    })
}

fn measure(kind: WorkloadKind) -> (f64, f64) {
    let run = runner()
        .isolated(kind, SchedulingPolicy::RoundRobin, SharingDegree::Private)
        .expect("isolated run");
    let v = &run.vms[0];
    (v.c2c_of_hierarchy_misses.mean, v.c2c_dirty_fraction.mean)
}

#[test]
fn tpc_w_matches_table2() {
    let (c2c, dirty) = measure(WorkloadKind::TpcW);
    assert!((c2c - 0.15).abs() < 0.07, "TPC-W c2c {c2c:.3} vs 0.15");
    assert!(
        (dirty - 0.16).abs() < 0.08,
        "TPC-W dirty {dirty:.3} vs 0.16"
    );
}

#[test]
fn spec_jbb_matches_table2() {
    let (c2c, dirty) = measure(WorkloadKind::SpecJbb);
    assert!((c2c - 0.52).abs() < 0.10, "SPECjbb c2c {c2c:.3} vs 0.52");
    assert!(
        (dirty - 0.06).abs() < 0.06,
        "SPECjbb dirty {dirty:.3} vs 0.06"
    );
}

#[test]
fn tpc_h_matches_table2() {
    let (c2c, dirty) = measure(WorkloadKind::TpcH);
    assert!((c2c - 0.69).abs() < 0.10, "TPC-H c2c {c2c:.3} vs 0.69");
    assert!(
        (dirty - 0.57).abs() < 0.10,
        "TPC-H dirty {dirty:.3} vs 0.57"
    );
}

#[test]
fn spec_web_matches_table2() {
    let (c2c, dirty) = measure(WorkloadKind::SpecWeb);
    assert!((c2c - 0.37).abs() < 0.10, "SPECweb c2c {c2c:.3} vs 0.37");
    assert!(
        (dirty - 0.07).abs() < 0.06,
        "SPECweb dirty {dirty:.3} vs 0.07"
    );
}

#[test]
fn c2c_ordering_matches_table2() {
    // TPC-H > SPECjbb > SPECweb > TPC-W, the paper's ordering.
    let h = measure(WorkloadKind::TpcH).0;
    let jbb = measure(WorkloadKind::SpecJbb).0;
    let web = measure(WorkloadKind::SpecWeb).0;
    let w = measure(WorkloadKind::TpcW).0;
    assert!(
        h > jbb && jbb > web && web > w,
        "ordering broke: {h:.2} {jbb:.2} {web:.2} {w:.2}"
    );
}

#[test]
fn dirty_ordering_matches_table2() {
    // TPC-H is dirty-transfer dominated; the rest are clean-dominated.
    let h = measure(WorkloadKind::TpcH).1;
    for kind in [
        WorkloadKind::TpcW,
        WorkloadKind::SpecJbb,
        WorkloadKind::SpecWeb,
    ] {
        let d = measure(kind).1;
        assert!(
            h > 2.0 * d,
            "TPC-H dirty {h:.2} must dominate {kind} {d:.2}"
        );
    }
}

#[test]
fn footprint_ordering_matches_table2() {
    // Blocks touched in equal-length runs must order as the Table II
    // footprints: TPC-W > SPECweb > SPECjbb > TPC-H.
    let mut options = runner().options().clone();
    options.track_footprint = true;
    let r = ExperimentRunner::new(options);
    let touched = |kind: WorkloadKind| {
        r.isolated(kind, SchedulingPolicy::RoundRobin, SharingDegree::Private)
            .expect("run")
            .vms[0]
            .footprint_blocks
            .mean
    };
    let w = touched(WorkloadKind::TpcW);
    let web = touched(WorkloadKind::SpecWeb);
    let jbb = touched(WorkloadKind::SpecJbb);
    let h = touched(WorkloadKind::TpcH);
    assert!(
        w > web && web > jbb && jbb > h,
        "footprint ordering broke: {w:.0} {web:.0} {jbb:.0} {h:.0}"
    );
}
