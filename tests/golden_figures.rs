//! Golden snapshot tests for the paper's figure tables.
//!
//! Each figure function renders to a plain-text table; this test pins the
//! exact output for a small fixed configuration (refs, warmup, seed all
//! hard-coded — deliberately *not* reading `CONSIM_REFS` etc., so the
//! snapshots don't drift with the environment). Any change to workload
//! generation, the engine's protocol walk, the statistics pipeline, or
//! table formatting shows up as a readable text diff against
//! `tests/golden/`.
//!
//! To bless new output after an intentional behavior change:
//!
//! ```text
//! CONSIM_BLESS=1 cargo test --test golden_figures
//! git diff tests/golden/   # review every diff before committing
//! ```

use consim_bench::figures;
use consim_bench::FigureContext;
use consim_job::runner::RunOptions;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Small fixed run: big enough that every figure has signal (cache
/// pressure, sharing, migrations), small enough to run in CI.
fn golden_options() -> RunOptions {
    RunOptions {
        refs_per_vm: 1_500,
        warmup_refs_per_vm: 400,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: true,
    }
}

fn golden_context() -> FigureContext {
    FigureContext::new(golden_options())
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn bless_requested() -> bool {
    std::env::var("CONSIM_BLESS").is_ok_and(|v| v.trim() == "1")
}

#[test]
fn figures_match_golden_snapshots() {
    let ctx = golden_context();
    // Rendered lazily in order; the shared context memoizes simulation
    // cells, so overlapping figures (5/6/7, 8/9/10) reuse each other's runs.
    let figures: Vec<(&str, String)> = vec![
        ("table2", figures::table2(&ctx).unwrap().to_string()),
        ("table4", figures::table4()),
        (
            "fig02_isolated_performance",
            figures::fig02_isolated_performance(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig03_isolated_missrate",
            figures::fig03_isolated_missrate(&ctx).unwrap().to_string(),
        ),
        (
            "fig04_isolated_misslatency",
            figures::fig04_isolated_misslatency(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig05_homogeneous_performance",
            figures::fig05_homogeneous_performance(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig06_homogeneous_misslatency",
            figures::fig06_homogeneous_misslatency(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig07_homogeneous_missrate",
            figures::fig07_homogeneous_missrate(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig08_heterogeneous_performance",
            figures::fig08_heterogeneous_performance(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig09_heterogeneous_missrate",
            figures::fig09_heterogeneous_missrate(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig10_heterogeneous_misslatency",
            figures::fig10_heterogeneous_misslatency(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig11_sharing_degree",
            figures::fig11_sharing_degree(&ctx).unwrap().to_string(),
        ),
        (
            "fig12_replication",
            figures::fig12_replication(&ctx).unwrap().to_string(),
        ),
        (
            "fig13_occupancy",
            figures::fig13_occupancy(&ctx).unwrap().to_string(),
        ),
        (
            "fig14_partitioning",
            figures::fig14_partitioning(&ctx).unwrap().to_string(),
        ),
        (
            "fig15_dynamic_partitioning",
            figures::fig15_dynamic_partitioning(&ctx)
                .unwrap()
                .to_string(),
        ),
        (
            "fig16_lifecycle_churn",
            figures::fig16_lifecycle_churn(&ctx).unwrap().to_string(),
        ),
    ];

    let dir = golden_dir();
    if bless_requested() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, rendered) in &figures {
            std::fs::write(dir.join(format!("{name}.txt")), rendered).unwrap();
        }
        return;
    }

    let mut report = String::new();
    for (name, rendered) in &figures {
        let path = dir.join(format!("{name}.txt"));
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == *rendered => {}
            Ok(expected) => {
                let _ = writeln!(
                    report,
                    "--- {name}: output differs from {} ---\nexpected:\n{expected}\nactual:\n{rendered}",
                    path.display()
                );
            }
            Err(e) => {
                let _ = writeln!(
                    report,
                    "--- {name}: cannot read {}: {e} ---",
                    path.display()
                );
            }
        }
    }
    assert!(
        report.is_empty(),
        "golden snapshots differ; if intentional, re-bless with \
         `CONSIM_BLESS=1 cargo test --test golden_figures` and review the diff\n{report}"
    );
}

/// Checkpoint→resume pins to the *same* goldens: a figure rendered from a
/// journal left behind by a faulted, checkpointing run and completed by a
/// resumed invocation must match `tests/golden/fig12_replication.txt`
/// byte-for-byte. Any seam in the checkpoint/restore path — a counter
/// lost, an RNG stream replayed, a cache line misplaced — shows up as a
/// readable text diff against the blessed snapshot.
#[test]
fn resumed_render_matches_golden_snapshot() {
    use consim_job::runner::ExperimentRunner;

    if bless_requested() {
        // The snapshot is blessed by `figures_match_golden_snapshots`;
        // don't race its writes within the same process.
        return;
    }

    let dir = std::env::temp_dir().join(format!("consim-golden-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // First invocation: crash (via fault injection) after one completed
    // cell, with mid-cell checkpointing on.
    let faulted = FigureContext::with_runner(
        ExperimentRunner::new(golden_options())
            .with_journal(&dir)
            .with_checkpoint_every(300)
            .with_fault_after(1),
    );
    assert!(
        figures::fig12_replication(&faulted).is_err(),
        "fault injection must abort the first render"
    );

    // Second invocation: resume from the journal and render.
    let resumed =
        FigureContext::with_runner(ExperimentRunner::new(golden_options()).with_journal(&dir));
    let rendered = figures::fig12_replication(&resumed).unwrap().to_string();
    let golden =
        std::fs::read_to_string(golden_dir().join("fig12_replication.txt")).expect("golden exists");
    assert_eq!(
        rendered, golden,
        "resumed render differs from the golden snapshot"
    );
    std::fs::remove_dir_all(&dir).ok();
}
