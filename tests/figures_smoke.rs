//! Smoke tests for every figure/table regenerator at test scale: each
//! exhibit must produce a table with the paper's rows and columns.

use consim_bench::{figures, FigureContext};
use consim_job::runner::RunOptions;

fn ctx() -> FigureContext {
    FigureContext::new(RunOptions {
        refs_per_vm: 2_000,
        warmup_refs_per_vm: 500,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    })
}

#[test]
fn table2_has_four_workloads() {
    let t = figures::table2(&ctx()).unwrap();
    assert_eq!(t.len(), 4);
    let text = t.to_string();
    for name in ["TPC-W", "SPECjbb", "TPC-H", "SPECweb"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn table4_lists_all_thirteen_mixes() {
    let text = figures::table4();
    for n in 1..=9 {
        assert!(text.contains(&format!("Mix {n} ")), "missing Mix {n}");
    }
    for c in ['A', 'B', 'C', 'D'] {
        assert!(text.contains(&format!("Mix {c} ")), "missing Mix {c}");
    }
}

#[test]
fn isolated_figures_have_expected_shape() {
    let ctx = ctx();
    let f2 = figures::fig02_isolated_performance(&ctx).unwrap();
    assert_eq!(f2.len(), 4);
    assert!(f2.to_string().contains("2LL$ rr"));
    let f3 = figures::fig03_isolated_missrate(&ctx).unwrap();
    assert_eq!(f3.len(), 4);
    let f4 = figures::fig04_isolated_misslatency(&ctx).unwrap();
    assert_eq!(f4.len(), 4);
    assert!(f4.to_string().contains("priv aff"));
}

#[test]
fn homogeneous_figures_have_expected_shape() {
    let ctx = ctx();
    for t in [
        figures::fig05_homogeneous_performance(&ctx).unwrap(),
        figures::fig06_homogeneous_misslatency(&ctx).unwrap(),
        figures::fig07_homogeneous_missrate(&ctx).unwrap(),
    ] {
        assert_eq!(t.len(), 4, "one row per workload");
        let text = t.to_string();
        for policy in ["rr", "affinity", "aff-rr", "random"] {
            assert!(text.contains(policy), "missing column {policy}");
        }
    }
}

#[test]
fn heterogeneous_figures_cover_all_mixes() {
    let ctx = ctx();
    // 9 mixes x 2 distinct workloads each = 18 rows (+6 iso rows in fig 8).
    let f8 = figures::fig08_heterogeneous_performance(&ctx).unwrap();
    assert_eq!(f8.len(), 18 + 3);
    let f9 = figures::fig09_heterogeneous_missrate(&ctx).unwrap();
    assert_eq!(f9.len(), 18);
    let f10 = figures::fig10_heterogeneous_misslatency(&ctx).unwrap();
    assert_eq!(f10.len(), 18);
    let text = f10.to_string();
    assert!(text.contains("Mix 9 TPC-W"));
}

#[test]
fn sharing_and_snapshot_figures_have_expected_shape() {
    let ctx = ctx();
    let f11 = figures::fig11_sharing_degree(&ctx).unwrap();
    assert_eq!(f11.len(), 18);
    assert!(f11.to_string().contains("1x16MB"));
    let f12 = figures::fig12_replication(&ctx).unwrap();
    assert_eq!(f12.len(), 4);
    assert!(f12.to_string().contains("private (max)"));
    let f13 = figures::fig13_occupancy(&ctx).unwrap();
    assert_eq!(f13.len(), 36, "9 mixes x 4 VMs");
}

#[test]
fn context_memoization_spans_figures() {
    let ctx = ctx();
    figures::fig02_isolated_performance(&ctx).unwrap();
    let after_f2 = ctx.cached_cells();
    // Fig 3 uses exactly the same cells.
    figures::fig03_isolated_missrate(&ctx).unwrap();
    assert_eq!(
        ctx.cached_cells(),
        after_f2,
        "fig 3 must reuse fig 2's runs"
    );
}
