//! Reproducibility and statistical-simulation behavior across the whole
//! stack.

use server_consolidation_sim::engine::{Simulation, SimulationConfig};
use server_consolidation_sim::prelude::*;

fn config(seed: u64, policy: SchedulingPolicy) -> SimulationConfig {
    let mut b = SimulationConfig::builder();
    b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
        .policy(policy)
        .refs_per_vm(8_000)
        .warmup_refs_per_vm(2_000)
        .seed(seed);
    for kind in [WorkloadKind::SpecJbb, WorkloadKind::TpcH] {
        b.workload(kind.profile());
    }
    b.build().expect("valid config")
}

fn fingerprint(outcome: &SimulationOutcome) -> Vec<u64> {
    let mut f = vec![outcome.measured_cycles];
    for m in &outcome.vm_metrics {
        f.push(m.refs);
        f.push(m.l1_misses);
        f.push(m.memory_fetches);
        f.push(m.c2c_l1_clean + m.c2c_l1_dirty);
        f.push(m.runtime_cycles());
        f.push(m.miss_latency.total());
    }
    f.push(outcome.noc.packets);
    f.push(outcome.replication.replicated_lines);
    f
}

#[test]
fn identical_configs_are_bit_identical() {
    let a = Simulation::new(config(7, SchedulingPolicy::Affinity))
        .unwrap()
        .run()
        .unwrap();
    let b = Simulation::new(config(7, SchedulingPolicy::Affinity))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn seeds_perturb_results() {
    let a = Simulation::new(config(1, SchedulingPolicy::Affinity))
        .unwrap()
        .run()
        .unwrap();
    let b = Simulation::new(config(2, SchedulingPolicy::Affinity))
        .unwrap()
        .run()
        .unwrap();
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn policies_change_behavior() {
    let a = Simulation::new(config(1, SchedulingPolicy::Affinity))
        .unwrap()
        .run()
        .unwrap();
    let b = Simulation::new(config(1, SchedulingPolicy::RoundRobin))
        .unwrap()
        .run()
        .unwrap();
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn multi_seed_summaries_have_spread_and_shrinking_ci() {
    let narrow = ExperimentRunner::new(RunOptions {
        refs_per_vm: 5_000,
        warmup_refs_per_vm: 1_000,
        seeds: vec![1, 2],
        track_footprint: false,
        prewarm_llc: false,
    });
    let wide = ExperimentRunner::new(RunOptions {
        refs_per_vm: 5_000,
        warmup_refs_per_vm: 1_000,
        seeds: (1..=6).collect(),
        track_footprint: false,
        prewarm_llc: false,
    });
    let kinds = [WorkloadKind::TpcH];
    let a = narrow
        .run(
            &kinds,
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    let b = wide
        .run(
            &kinds,
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
    assert_eq!(a.vms[0].runtime_cycles.n, 2);
    assert_eq!(b.vms[0].runtime_cycles.n, 6);
    assert!(
        b.vms[0].runtime_cycles.std > 0.0,
        "seeds must perturb runtime"
    );
    // Means should agree within a loose band (same workload, same machine).
    let rel = (a.vms[0].runtime_cycles.mean - b.vms[0].runtime_cycles.mean).abs()
        / b.vms[0].runtime_cycles.mean;
    assert!(rel < 0.25, "seed means drifted {rel:.3}");
}

/// The parallel experiment executor must be an implementation detail:
/// per-cell metrics are bit-identical whether a batch runs on one worker
/// or many, and results always come back in submission order.
#[test]
fn parallel_batches_match_serial_bit_for_bit() {
    let options = RunOptions {
        refs_per_vm: 4_000,
        warmup_refs_per_vm: 1_000,
        seeds: vec![1, 2, 3],
        track_footprint: false,
        prewarm_llc: false,
    };
    let cells = vec![
        ExperimentCell::of_kinds(
            &[WorkloadKind::TpcH],
            SchedulingPolicy::Affinity,
            SharingDegree::FullyShared,
        ),
        ExperimentCell::of_kinds(
            &[WorkloadKind::SpecJbb; 3],
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        ),
        ExperimentCell::of_kinds(
            &[WorkloadKind::TpcW, WorkloadKind::SpecWeb],
            SchedulingPolicy::Random,
            SharingDegree::Private,
        ),
    ];
    let serial = ExperimentRunner::new(options.clone())
        .with_threads(1)
        .run_cells(&cells)
        .expect("serial batch");
    let parallel = ExperimentRunner::new(options)
        .with_threads(8)
        .run_cells(&cells)
        .expect("parallel batch");

    assert_eq!(serial.len(), cells.len());
    assert_eq!(parallel.len(), cells.len());
    for (cell, (s, p)) in cells.iter().zip(serial.iter().zip(&parallel)) {
        // Submission order: each aggregate covers its cell's VM count.
        assert_eq!(s.vms.len(), cell.profiles.len());
        assert_eq!(p.vms.len(), cell.profiles.len());
        for (sv, pv) in s.vms.iter().zip(&p.vms) {
            assert_eq!(
                sv.runtime_cycles.mean.to_bits(),
                pv.runtime_cycles.mean.to_bits(),
                "runtime must not depend on worker count"
            );
            assert_eq!(
                sv.miss_latency.mean.to_bits(),
                pv.miss_latency.mean.to_bits(),
                "miss latency must not depend on worker count"
            );
            assert_eq!(
                sv.llc_miss_rate.mean.to_bits(),
                pv.llc_miss_rate.mean.to_bits(),
                "miss rate must not depend on worker count"
            );
        }
        assert_eq!(s.replication.mean.to_bits(), p.replication.mean.to_bits());
    }
}

/// Worker count and tracing are both observability knobs: neither may
/// change a single reported bit. Runs the same batch on 1, 2, and 4
/// workers with a live [`RingBufferSink`] attached and demands identical
/// per-VM statistics everywhere.
#[test]
fn traced_runs_are_bit_identical_across_thread_counts() {
    use server_consolidation_sim::trace::{RingBufferSink, TraceSink};
    use std::sync::Arc;

    let options = RunOptions {
        refs_per_vm: 3_000,
        warmup_refs_per_vm: 500,
        seeds: vec![1, 2],
        track_footprint: false,
        prewarm_llc: true,
    };
    let cells = vec![
        ExperimentCell::of_kinds(
            &[WorkloadKind::SpecJbb, WorkloadKind::TpcH],
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        ),
        ExperimentCell::of_kinds(
            &[WorkloadKind::TpcW; 2],
            SchedulingPolicy::Random,
            SharingDegree::Private,
        ),
    ];
    let stats_bits = |threads: usize| -> (Vec<u64>, usize) {
        let sink = Arc::new(RingBufferSink::new(4_096));
        let results = ExperimentRunner::new(options.clone())
            .with_threads(threads)
            .with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .run_cells(&cells)
            .expect("traced batch");
        let mut bits = Vec::new();
        for agg in &results {
            for vm in &agg.vms {
                bits.push(vm.runtime_cycles.mean.to_bits());
                bits.push(vm.miss_latency.mean.to_bits());
                bits.push(vm.llc_miss_rate.mean.to_bits());
            }
            bits.push(agg.replication.mean.to_bits());
        }
        (bits, sink.snapshot().len())
    };
    let (serial, serial_events) = stats_bits(1);
    for threads in [2, 4] {
        let (parallel, parallel_events) = stats_bits(threads);
        assert_eq!(serial, parallel, "{threads} workers changed the report");
        assert_eq!(
            serial_events, parallel_events,
            "{threads} workers changed the event count"
        );
    }
    assert!(serial_events > 0, "the sink must actually receive events");
}

/// Crash recovery end-to-end: a sweep killed by fault injection leaves a
/// results journal; a second invocation pointed at the same journal loads
/// the completed cells, finishes the rest, and renders figure text that is
/// byte-identical to an uninterrupted run — on 1, 2, and 4 workers.
#[test]
fn faulted_sweep_resumes_to_byte_identical_figure_text() {
    use consim_bench::{figures, FigureContext};

    let options = RunOptions {
        refs_per_vm: 1_200,
        warmup_refs_per_vm: 300,
        seeds: vec![1, 2],
        track_footprint: false,
        prewarm_llc: true,
    };
    let reference = figures::fig12_replication(&FigureContext::with_runner(
        ExperimentRunner::new(options.clone()).with_threads(1),
    ))
    .expect("uninterrupted render")
    .to_string();

    for threads in [1usize, 2, 4] {
        let dir = std::env::temp_dir().join(format!(
            "consim-determinism-crash-{}-{threads}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        // First invocation: the injected fault aborts the sweep after two
        // completed cells, which must already be journaled.
        let faulted = FigureContext::with_runner(
            ExperimentRunner::new(options.clone())
                .with_threads(threads)
                .with_journal(&dir)
                .with_checkpoint_every(400)
                .with_fault_after(2),
        );
        let err = figures::fig12_replication(&faulted);
        let msg = match err {
            Err(e) => e.to_string(),
            Ok(t) => panic!("fault injection must abort the sweep, got:\n{t}"),
        };
        assert!(msg.contains("fault injected"), "unexpected error: {msg}");
        let journaled = std::fs::read_dir(&dir)
            .expect("journal directory exists after the crash")
            .count();
        assert!(journaled > 0, "the crashed run must leave journal records");

        // Second invocation: resume from the journal and finish the sweep.
        let resumed = FigureContext::with_runner(
            ExperimentRunner::new(options.clone())
                .with_threads(threads)
                .with_journal(&dir),
        );
        let rendered = figures::fig12_replication(&resumed)
            .expect("resumed render")
            .to_string();
        assert_eq!(
            rendered, reference,
            "{threads} workers: resumed figure text differs from uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A churn policy sized so every knob fires inside these short runs:
/// boundaries every 2k cycles, high arrival/departure rates, migration on.
fn churny_machine() -> MachineConfig {
    MachineConfig::paper_default().with_churn(ChurnPolicy {
        interval: 2_000,
        arrival_permille: vec![600, 600],
        departure_permille: vec![400, 400],
        migration_permille: 500,
        initial_active: 2,
        min_active: 1,
        migration_targets: None,
    })
}

fn churned_config(seed: u64) -> SimulationConfig {
    let mut b = SimulationConfig::builder();
    b.machine(churny_machine().with_sharing(SharingDegree::SharedBy(4)))
        .policy(SchedulingPolicy::RoundRobin)
        .refs_per_vm(8_000)
        .warmup_refs_per_vm(2_000)
        .seed(seed);
    for kind in [WorkloadKind::SpecJbb, WorkloadKind::TpcH] {
        b.workload(kind.profile());
    }
    b.build().expect("valid churned config")
}

/// Lifecycle churn composes with both observability knobs: a churned,
/// traced batch must report identical bits — including the churn activity
/// counters and the tail-latency aggregate — on 1, 2, and 4 workers.
#[test]
fn churned_traced_runs_are_bit_identical_across_thread_counts() {
    use server_consolidation_sim::trace::{RingBufferSink, TraceSink};
    use std::sync::Arc;

    let options = RunOptions {
        refs_per_vm: 3_000,
        warmup_refs_per_vm: 500,
        seeds: vec![1, 2],
        track_footprint: false,
        prewarm_llc: false,
    };
    let cells = vec![
        ExperimentCell::of_kinds(
            &[WorkloadKind::SpecJbb, WorkloadKind::TpcH],
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        ),
        ExperimentCell::of_kinds(
            &[WorkloadKind::TpcW; 2],
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        ),
    ];
    let stats_bits = |threads: usize| -> (Vec<u64>, usize, f64) {
        let sink = Arc::new(RingBufferSink::new(8_192));
        let results = ExperimentRunner::with_machine(churny_machine(), options.clone())
            .with_threads(threads)
            .with_sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .run_cells(&cells)
            .expect("churned traced batch");
        let mut bits = Vec::new();
        let mut activity = 0.0;
        for agg in &results {
            for vm in &agg.vms {
                bits.push(vm.runtime_cycles.mean.to_bits());
                bits.push(vm.miss_latency.mean.to_bits());
                bits.push(vm.miss_latency_max.mean.to_bits());
                bits.push(vm.llc_miss_rate.mean.to_bits());
            }
            bits.push(agg.churn.spawns.mean.to_bits());
            bits.push(agg.churn.retires.mean.to_bits());
            bits.push(agg.churn.migrations.mean.to_bits());
            bits.push(agg.churn.scrub_writebacks.mean.to_bits());
            activity += agg.churn.spawns.mean + agg.churn.retires.mean + agg.churn.migrations.mean;
        }
        (bits, sink.snapshot().len(), activity)
    };
    let (serial, serial_events, activity) = stats_bits(1);
    for threads in [2, 4] {
        let (parallel, parallel_events, _) = stats_bits(threads);
        assert_eq!(
            serial, parallel,
            "{threads} workers changed a churned report"
        );
        assert_eq!(
            serial_events, parallel_events,
            "{threads} workers changed the churned event count"
        );
    }
    assert!(
        activity > 0.0,
        "the churn policy never fired — the test is vacuous"
    );
}

/// Churned manifest digests: the same churned run digests identically on
/// every execution, a seed change moves the digest, and enabling churn
/// moves it away from the static run's.
#[test]
fn churned_manifest_digests_are_stable() {
    use server_consolidation_sim::trace::digest_of;

    // The static fingerprint plus the lifecycle counters.
    let churned_fingerprint = |outcome: &SimulationOutcome| -> Vec<u64> {
        let mut f = fingerprint(outcome);
        let stats = outcome.churn.as_ref().expect("churned run reports stats");
        f.extend([
            stats.spawns,
            stats.retires,
            stats.migrations,
            stats.l0_lines_invalidated,
            stats.l1_lines_invalidated,
            stats.writebacks,
        ]);
        f
    };
    let run_digest = |seed: u64| -> String {
        let outcome = Simulation::new(churned_config(seed))
            .unwrap()
            .run()
            .unwrap();
        digest_of(&churned_fingerprint(&outcome))
    };
    let a = run_digest(7);
    assert_eq!(
        a,
        run_digest(7),
        "identical churned runs must digest identically"
    );
    assert_ne!(
        a,
        run_digest(8),
        "seed changes must move the churned digest"
    );
    let static_outcome = Simulation::new(config(7, SchedulingPolicy::RoundRobin))
        .unwrap()
        .run()
        .unwrap();
    assert_ne!(
        a,
        digest_of(&fingerprint(&static_outcome)),
        "churn must change what the run digests to"
    );
}

/// Manifest digests are the replayability anchor: the same logical run
/// must digest to the same 16-hex string on every execution, and any
/// seed change must move it.
#[test]
fn manifest_digests_are_stable_across_runs() {
    use server_consolidation_sim::trace::digest_of;

    let run_digest = |seed: u64| -> String {
        let outcome = Simulation::new(config(seed, SchedulingPolicy::Affinity))
            .unwrap()
            .run()
            .unwrap();
        digest_of(&fingerprint(&outcome))
    };
    let a = run_digest(7);
    let b = run_digest(7);
    assert_eq!(a, b, "identical runs must digest identically");
    assert_eq!(a.len(), 16);
    assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(a, run_digest(8), "seed changes must move the digest");
}

#[test]
fn placement_is_deterministic_per_seed_even_when_random() {
    let a = Simulation::new(config(3, SchedulingPolicy::Random)).unwrap();
    let b = Simulation::new(config(3, SchedulingPolicy::Random)).unwrap();
    let pa: Vec<_> = a.placement().iter().collect();
    let pb: Vec<_> = b.placement().iter().collect();
    assert_eq!(pa, pb);
}
