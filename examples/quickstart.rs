//! Quickstart: consolidate two SPECjbb and two TPC-H instances (the paper's
//! Mix 5) on the 16-core machine and compare scheduling policies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use server_consolidation_sim::prelude::*;

fn main() -> Result<(), SimError> {
    // Paper-scale warmup takes minutes; the quickstart trades some cache
    // warmth for a fast first run. See `crates/bench` for full-length runs.
    let runner = ExperimentRunner::new(RunOptions {
        refs_per_vm: 30_000,
        warmup_refs_per_vm: 60_000,
        seeds: vec![1, 2],
        track_footprint: false,
        prewarm_llc: false,
    });

    let mix = Mix::heterogeneous(5).expect("mix 5 is defined");
    println!("Running {mix} on shared-4-way LLCs...\n");

    let mut table = TextTable::new(
        "Mix 5: per-VM results (mean over seeds)",
        &["runtime (Mcy)", "miss rate %", "miss lat (cy)", "c2c %"],
    );
    for policy in [SchedulingPolicy::Affinity, SchedulingPolicy::RoundRobin] {
        let run = runner.run(mix.instances(), policy, SharingDegree::SharedBy(4))?;
        for (vm, agg) in run.vms.iter().enumerate() {
            table.row(
                format!("{policy} vm{vm} {}", agg.kind),
                &[
                    agg.runtime_cycles.mean / 1e6,
                    agg.llc_miss_rate.mean * 100.0,
                    agg.miss_latency.mean,
                    agg.c2c_fraction.mean * 100.0,
                ],
            );
        }
    }
    println!("{table}");
    println!(
        "Reading the table: SPECjbb instances are the consolidation-sensitive\n\
         ones (larger miss-rate increases), while TPC-H's small, heavily shared\n\
         working set rides along largely unharmed — the paper's §V-C headline."
    );
    Ok(())
}
