//! Consolidation interference study: how much does each workload suffer
//! from its co-tenants?
//!
//! Replays the paper's §V-C methodology on all nine heterogeneous mixes:
//! every workload's runtime is normalized to the same workload running in
//! isolation with the fully shared 16 MB LLC, so a value of 1.0 means
//! "consolidation cost nothing" and 2.0 means "twice as slow as alone".
//!
//! ```sh
//! cargo run --release --example consolidation_study
//! ```

use server_consolidation_sim::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), SimError> {
    let runner = ExperimentRunner::new(RunOptions {
        refs_per_vm: 25_000,
        warmup_refs_per_vm: 50_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    });
    let policy = SchedulingPolicy::Affinity;
    let sharing = SharingDegree::SharedBy(4);

    // Isolation baselines, one per workload.
    let mut baselines: HashMap<WorkloadKind, f64> = HashMap::new();
    for kind in [
        WorkloadKind::TpcW,
        WorkloadKind::SpecJbb,
        WorkloadKind::TpcH,
    ] {
        let run = runner.isolation_baseline(kind)?;
        baselines.insert(kind, run.vms[0].runtime_cycles.mean);
    }

    let mut table = TextTable::new(
        "Normalized runtime per workload across heterogeneous mixes (affinity, shared-4)",
        &["slowdown vs isolation", "miss rate %"],
    );
    let mut worst: Option<(String, f64)> = None;
    let mut best: Option<(String, f64)> = None;
    for mix in Mix::all_heterogeneous() {
        let run = runner.run(mix.instances(), policy, sharing)?;
        for kind in mix.distinct_workloads() {
            let slowdown = run.mean_over_kind(kind, |v| v.runtime_cycles.mean) / baselines[&kind];
            let missrate = run.mean_over_kind(kind, |v| v.llc_miss_rate.mean) * 100.0;
            let label = format!("{} {}", mix.id(), kind);
            if worst.as_ref().map(|(_, w)| slowdown > *w).unwrap_or(true) {
                worst = Some((label.clone(), slowdown));
            }
            if best.as_ref().map(|(_, b)| slowdown < *b).unwrap_or(true) {
                best = Some((label.clone(), slowdown));
            }
            table.row(label, &[slowdown, missrate]);
        }
    }
    println!("{table}");
    let (wl, wv) = worst.expect("nine mixes ran");
    let (bl, bv) = best.expect("nine mixes ran");
    println!("Most affected:  {wl} ({wv:.2}x isolation)");
    println!("Least affected: {bl} ({bv:.2}x isolation)");
    println!(
        "\nExpected shape (paper Fig. 8): TPC-H rows stay lowest — its small,\n\
         transfer-friendly footprint isolates it — while SPECjbb degrades most,\n\
         especially when sharing the chip with TPC-W (Mixes 7-9)."
    );
    Ok(())
}
