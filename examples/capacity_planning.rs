//! Capacity planning with a custom workload: which LLC sharing degree suits
//! *your* application mix?
//!
//! Builds a custom analytics-style workload with
//! [`WorkloadProfileBuilder`], consolidates four instances, and sweeps the
//! LLC arrangement from private 1 MB slices to a fully shared 16 MB cache —
//! the design-space walk of the paper's §III on a workload the paper never
//! saw.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use server_consolidation_sim::prelude::*;

fn main() -> Result<(), SimError> {
    // A synthetic "analytics service": moderate footprint, heavy read
    // sharing of a common index, migratory scan buffers.
    let profile = WorkloadProfileBuilder::new("analytics")
        .footprint_blocks(300_000)
        .shared_fraction(0.5)
        .shared_access_prob(0.6)
        .shared_write_prob(0.05)
        .private_write_prob(0.08)
        .shared_zipf(0.8)
        .private_zipf(0.7)
        .handoff_access_prob(0.3)
        .handoff_segments(32)
        .handoff_segment_blocks(32)
        .handoff_write_prob(0.2)
        .build()?;

    let runner = ExperimentRunner::new(RunOptions {
        refs_per_vm: 25_000,
        warmup_refs_per_vm: 60_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    });
    let instances = vec![profile.clone(); 4];

    let mut table = TextTable::new(
        "Four 'analytics' instances vs LLC sharing degree (affinity)",
        &[
            "runtime (Mcy)",
            "miss rate %",
            "miss lat (cy)",
            "replication %",
        ],
    );
    let mut best: Option<(String, f64)> = None;
    for sharing in SharingDegree::paper_sweep() {
        let run = runner.run_profiles(&instances, SchedulingPolicy::Affinity, sharing)?;
        let runtime =
            run.vms.iter().map(|v| v.runtime_cycles.mean).sum::<f64>() / run.vms.len() as f64;
        let missrate =
            run.vms.iter().map(|v| v.llc_miss_rate.mean).sum::<f64>() / run.vms.len() as f64;
        let misslat =
            run.vms.iter().map(|v| v.miss_latency.mean).sum::<f64>() / run.vms.len() as f64;
        if best.as_ref().map(|(_, b)| runtime < *b).unwrap_or(true) {
            best = Some((sharing.label(), runtime));
        }
        table.row(
            sharing.label(),
            &[
                runtime / 1e6,
                missrate * 100.0,
                misslat,
                run.replication.mean * 100.0,
            ],
        );
    }
    println!("{table}");
    let (label, _) = best.expect("sweep ran");
    println!("Fastest arrangement for this mix: {label}");
    println!(
        "\nThe trade-off being navigated (paper §III): more sharing raises\n\
         effective capacity and removes replication, but couples tenants;\n\
         more partitioning isolates them but wastes idle capacity."
    );
    Ok(())
}
