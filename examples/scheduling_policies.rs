//! Scheduling-policy comparison: how thread placement shapes cache sharing.
//!
//! Runs the homogeneous SPECjbb mix (the paper's Mix C) under all four
//! hypervisor policies on shared-4-way LLCs and reports performance, miss
//! latency, interconnect latency, and LLC line replication — the quantities
//! behind the paper's Figs. 5, 6, and 12.
//!
//! ```sh
//! cargo run --release --example scheduling_policies
//! ```

use server_consolidation_sim::prelude::*;

fn main() -> Result<(), SimError> {
    let runner = ExperimentRunner::new(RunOptions {
        refs_per_vm: 25_000,
        warmup_refs_per_vm: 50_000,
        seeds: vec![1, 2],
        track_footprint: false,
        prewarm_llc: false,
    });
    let mix = Mix::homogeneous('C').expect("mix C is defined");
    println!("Running {mix} under each scheduling policy...\n");

    let mut table = TextTable::new(
        "Mix C (SPECjbb x4), shared-4-way",
        &[
            "runtime (Mcy)",
            "miss lat (cy)",
            "noc lat (cy)",
            "replication %",
        ],
    );
    for policy in [
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::Affinity,
        SchedulingPolicy::RrAffinity,
        SchedulingPolicy::Random,
    ] {
        let run = runner.run(mix.instances(), policy, SharingDegree::SharedBy(4))?;
        let runtime =
            run.vms.iter().map(|v| v.runtime_cycles.mean).sum::<f64>() / run.vms.len() as f64;
        let misslat =
            run.vms.iter().map(|v| v.miss_latency.mean).sum::<f64>() / run.vms.len() as f64;
        table.row(
            policy.label(),
            &[
                runtime / 1e6,
                misslat,
                run.noc_latency.mean,
                run.replication.mean * 100.0,
            ],
        );
    }
    println!("{table}");
    println!(
        "Expected shape (paper §V-B, Fig. 12): affinity keeps each workload's\n\
         threads on one cache, so it replicates nothing and serves shared data\n\
         fastest; round robin spreads threads across all four banks and pays\n\
         for it with the highest replication."
    );
    Ok(())
}
