#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the tier-1 test suite.
#
# Mirrors .github/workflows/ci.yml so the same checks run locally before a
# push. The workspace has no external dependencies, so everything works
# offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== tier-1: cargo test (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "CI OK"
