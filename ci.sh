#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the tier-1 test suite.
#
# Mirrors .github/workflows/ci.yml so the same checks run locally before a
# push. The workspace has no external dependencies, so everything works
# offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== tier-1: cargo test (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== workspace tests (release) =="
cargo test --workspace --release -q

echo "== differential oracle smoke (consim-check, fixed seed) =="
# The generator draws dynamic-repartitioning cases at ~30% and lifecycle
# churn at ~30%, so this smoke covers the QoS controller and the
# birth–death/migration machinery against the naive mirror.
cargo run --release -q -p consim-check --bin fuzz -- --cases 500 --seed 7

echo "== QoS mutation self-test (IgnoreRepartition must be caught) =="
cargo test --release -q -p consim-check ignore_repartition_mutation_is_detected

echo "== churn mutation self-tests (IgnoreRetire, SkipMigrationInvalidation) =="
cargo test --release -q -p consim-check ignore_retire_mutation_is_detected
cargo test --release -q -p consim-check skip_migration_invalidation_mutation_is_detected

echo "== lifecycle churn smoke (every case churned, fixed seed) =="
cargo run --release -q -p consim-check --bin fuzz -- --cases 200 --seed 23 --churn

echo "== checkpoint/resume seam smoke (consim-check, fixed seed) =="
cargo run --release -q -p consim-check --bin fuzz -- --cases 200 --seed 11 --resume

echo "== fast-path fuzz smoke (high-locality bias, fixed seed) =="
cargo run --release -q -p consim-check --bin fuzz -- --cases 200 --seed 19 --high-locality

echo "== audit + trace smoke (release run_all at tiny quotas) =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
CONSIM_REFS=2000 CONSIM_WARMUP=500 CONSIM_SEEDS=1 \
  cargo run --release -q -p consim-bench --bin run_all -- \
  --audit --trace "$smoke_dir" > /dev/null
test -s "$smoke_dir/events.jsonl"
test -s "$smoke_dir/manifest.json"
grep -q '"event":"audit_passed"' "$smoke_dir/events.jsonl"
grep -q '"bin": "run_all"' "$smoke_dir/manifest.json"

echo "== job-pool crash/resume smoke (CONSIM_FAULT, zero lost jobs) =="
# Kill a run after 2 completed jobs, resume it, and demand the resumed
# figure text is byte-identical to an uninterrupted run. The faulted
# invocation must exit non-zero but journal every completed job.
job_env=(CONSIM_REFS=2000 CONSIM_WARMUP=500 CONSIM_SEEDS=1)
env "${job_env[@]}" \
  cargo run --release -q -p consim-bench --bin run_all \
  > "$smoke_dir/plain.txt"
if env "${job_env[@]}" CONSIM_FAULT=cell:2 \
  cargo run --release -q -p consim-bench --bin run_all -- \
  --resume "$smoke_dir/journal" > /dev/null 2> "$smoke_dir/fault.log"; then
  echo "fault-injected run_all unexpectedly succeeded" >&2
  exit 1
fi
grep -q "fault injected" "$smoke_dir/fault.log"
recs=$(ls "$smoke_dir/journal"/job-*.bin | wc -l)
[ "$recs" -ge 2 ] || { echo "expected >=2 journaled jobs, got $recs" >&2; exit 1; }
env "${job_env[@]}" \
  cargo run --release -q -p consim-bench --bin run_all -- \
  --resume "$smoke_dir/journal" > "$smoke_dir/resumed.txt"
cmp "$smoke_dir/plain.txt" "$smoke_dir/resumed.txt"

echo "== job layer demo (live queue, time slices, cancel, fault+resume) =="
CONSIM_REFS=2000 CONSIM_WARMUP=500 CONSIM_SEEDS=2 \
  cargo run --release -q -p consim-bench --bin jobs > /dev/null

echo "== daemon stress smoke (crash mid-run, restart, ledger match) =="
# A fixed-seed 200-job stress against the consim-serve daemon. The
# reference run is uninterrupted and verifies every completed outcome
# byte-for-byte against a serial WorkerPool reference; the crash run
# SIGKILLs the daemon after 60 acked submissions and additionally arms
# CONSIM_FAULT=jobs:40 on the first daemon process, restarting over the
# same journal each time. Zero lost jobs (stress exits non-zero
# otherwise), at least one restart, and a byte-identical ledger are the
# gates. consim-serve is not a root-package dependency, so build it
# explicitly.
cargo build --release -q -p consim-serve
target/release/stress --seed 9 --jobs 200 --clients 4 --workers 2 \
  --scratch "$smoke_dir/serve-ref" --ledger "$smoke_dir/ref.ledger" \
  > "$smoke_dir/stress-ref.txt"
target/release/stress --seed 9 --jobs 200 --clients 4 --workers 2 \
  --kill-after 60 --fault-after 40 --no-verify \
  --scratch "$smoke_dir/serve-crash" --ledger "$smoke_dir/crash.ledger" \
  > "$smoke_dir/stress-crash.txt"
if grep -q "restarts=0" "$smoke_dir/stress-crash.txt"; then
  echo "crash run never restarted the daemon" >&2
  cat "$smoke_dir/stress-crash.txt" >&2
  exit 1
fi
cmp "$smoke_dir/ref.ledger" "$smoke_dir/crash.ledger"

echo "== perf smoke (non-gating, short throughput probe) =="
# A short serial probe compared against the committed BENCH_engine.json
# baseline. Informational only: wall-clock noise (shared CI boxes, thermal
# state) is far above any gate we could set, so a regression here prompts a
# full `cargo run --release -p consim-bench --bin throughput` by hand.
if [ ! -s BENCH_engine.json ]; then
  echo "perf smoke: SKIPPED — no committed BENCH_engine.json baseline" \
    "(regenerate with \`cargo run --release -p consim-bench --bin throughput\`)"
else
  base=$(sed -n 's/.*"serial_refs_per_sec": \([0-9]*\).*/\1/p' BENCH_engine.json)
  if [ -z "$base" ] || [ "$base" -le 0 ]; then
    echo "perf smoke: SKIPPED — BENCH_engine.json has no parsable" \
      "serial_refs_per_sec field (re-bless the baseline)"
  else
    CONSIM_REFS=20000 CONSIM_WARMUP=5000 CONSIM_SEEDS=2 CONSIM_THREADS=1 \
      cargo run --release -q -p consim-bench --bin throughput -- \
      --json "$smoke_dir/bench.json" || echo "perf smoke failed (non-gating)"
    probe=$(sed -n 's/.*"serial_refs_per_sec": \([0-9]*\).*/\1/p' "$smoke_dir/bench.json" 2>/dev/null)
    if [ -n "$probe" ]; then
      echo "perf smoke: probe ${probe} refs/sec vs committed baseline ${base} refs/sec" \
        "($(( 100 * probe / base ))% of baseline; informational)"
    else
      echo "perf smoke: probe produced no parsable output (non-gating)"
    fi
  fi
fi

echo "CI OK"
