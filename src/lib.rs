//! # server-consolidation-sim
//!
//! A reproduction of *An Evaluation of Server Consolidation Workloads for
//! Multi-Core Designs* (Enright Jerger, Vantrease, Lipasti — IISWC 2007) as
//! a production-quality Rust workspace: a transaction-level CMP
//! memory-hierarchy simulator, synthetic commercial workloads calibrated to
//! the paper's Table II, the four hypervisor scheduling policies, and a
//! harness regenerating every figure and table in the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API so downstream
//! users can depend on a single crate:
//!
//! * [`engine`](mod@engine) and friends — the simulation engine, mixes,
//!   and metrics (from the `consim` crate);
//! * [`job`] / [`runner`](mod@runner) — the job execution layer: worker
//!   pool, job queues, crash journal, and the experiment runner facade
//!   (from the `consim-job` crate);
//! * [`workload`] — workload profiles and reference-stream generators;
//! * [`sched`] — the scheduling policies;
//! * [`cache`] / [`coherence`] / [`noc`] — the hardware substrates;
//! * [`types`] — ids, addresses, machine configuration.
//!
//! # Quickstart
//!
//! Run the paper's Mix 5 (two SPECjbb + two TPC-H instances) under affinity
//! scheduling on shared-4-way LLCs:
//!
//! ```
//! use server_consolidation_sim::prelude::*;
//!
//! let runner = ExperimentRunner::new(RunOptions::quick());
//! let mix = Mix::heterogeneous(5).expect("mix 5 exists");
//! let run = runner.run(
//!     mix.instances(),
//!     SchedulingPolicy::Affinity,
//!     SharingDegree::SharedBy(4),
//! )?;
//! for vm in &run.vms {
//!     println!("{}: {:.0} cycles, miss rate {:.1}%",
//!         vm.kind, vm.runtime_cycles.mean, vm.llc_miss_rate.mean * 100.0);
//! }
//! # Ok::<(), server_consolidation_sim::types::SimError>(())
//! ```
//!
//! See `examples/` for richer scenarios and `crates/bench` for the
//! figure-by-figure reproduction harness.

pub use consim::{audit, churn, engine, machine, metrics, mix, persist, report, stats};
pub use consim_cache as cache;
pub use consim_coherence as coherence;
pub use consim_job as job;
pub use consim_job::runner;
pub use consim_noc as noc;
pub use consim_sched as sched;
pub use consim_trace as trace;
pub use consim_types as types;
pub use consim_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use consim::engine::{Simulation, SimulationConfig, SimulationOutcome};
    pub use consim::mix::{Mix, MixId};
    pub use consim::report::TextTable;
    pub use consim::stats::Summary;
    pub use consim_job::runner::{ExperimentCell, ExperimentRunner, MixRun, RunOptions};
    pub use consim_sched::SchedulingPolicy;
    pub use consim_types::config::{
        ChurnPolicy, MachineConfig, MachineConfigBuilder, SharingDegree,
    };
    pub use consim_types::{SimError, VmId};
    pub use consim_workload::{WorkloadKind, WorkloadProfile, WorkloadProfileBuilder};
}
